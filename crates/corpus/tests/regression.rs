//! The corpus as a regression oracle, end to end:
//!
//! * a freshly recorded corpus checks green against the same engine;
//! * a deliberately perturbed scheduling decision — the blessed tape
//!   rewritten as if the scheduler's tie-break had flipped — makes
//!   `check` fail with a divergence naming the entry and the exact
//!   logical clock;
//! * coverage drift (matrix grew, or stale entries linger) and
//!   truncated journals fail loudly;
//! * `bless` reports exactly what changed.

use std::fs;
use std::io::BufReader;
use std::path::PathBuf;

use decisionflow::engine::Strategy;
use decisionflow::journal::{read_journal, Event};
use dflow_corpus::{bless, check, default_matrix, record, BlessStatus, EntrySpec};
use dflowgen::PatternParams;

/// Fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dflow-corpus-test-{tag}-{}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clean scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A small matrix: one fan-out flow under two strategies with enough
/// parallelism that scheduling rounds pick several tasks (so a
/// tie-break flip is expressible).
fn small_matrix() -> Vec<EntrySpec> {
    let params = PatternParams {
        nb_nodes: 12,
        nb_rows: 4,
        pct_enabled: 60,
        ..Default::default()
    };
    ["PSE100", "PCE100"]
        .iter()
        .map(|s| {
            let strategy: Strategy = s.parse().unwrap();
            EntrySpec {
                name: format!("fanout-{strategy}-s7"),
                params,
                seed: 7,
                strategy,
                delta: false,
            }
        })
        .collect()
}

#[test]
fn pristine_corpus_checks_green() {
    let dir = scratch("pristine");
    let matrix = small_matrix();
    let written = record(&dir, &matrix).unwrap();
    assert_eq!(written.len(), 2);
    let report = check(&dir, &matrix).unwrap();
    assert!(
        report.passed(),
        "pristine corpus diverged:\n{}",
        report.to_text()
    );
    assert_eq!(report.entries_checked, 2);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn default_matrix_records_and_checks_green() {
    let dir = scratch("default-matrix");
    let matrix = default_matrix();
    assert_eq!(
        matrix.len(),
        36,
        "2 shapes × (8 strategies × 2 %Permitted + 2 delta cells)"
    );
    record(&dir, &matrix).unwrap();
    let report = check(&dir, &matrix).unwrap();
    assert!(report.passed(), "{}", report.to_text());
    fs::remove_dir_all(&dir).ok();
}

/// The acceptance-criteria scenario: an engine whose scheduler
/// tie-break flipped. We simulate it from the corpus side — the
/// blessed tape is rewritten with the picks of one scheduling round
/// reversed, which is exactly the journal that flipped engine would
/// have blessed. `check` against the *current* engine must fail with
/// a divergence naming the entry and the clock of that round.
#[test]
fn flipped_tie_break_fails_check_at_the_exact_clock() {
    let dir = scratch("flipped");
    let matrix = small_matrix();
    record(&dir, &matrix).unwrap();

    let entry = &matrix[0].name;
    let journal_path = dir.join(entry).join("journal.jsonl");
    let mut journal = read_journal(BufReader::new(fs::File::open(&journal_path).unwrap())).unwrap();

    // Find a round that picked at least two tasks and reverse its
    // launch order — the tie-break flip. The frames that follow
    // (launches in pick order) are left alone: a real engine change
    // would alter them too, but the divergence must already fire at
    // the round frame itself.
    let (idx, flipped) = journal
        .frames
        .iter()
        .enumerate()
        .find_map(|(i, f)| match &f.event {
            Event::Round {
                round,
                candidates,
                picked,
            } if picked.len() >= 2 => {
                let mut rev = picked.clone();
                rev.reverse();
                Some((
                    i,
                    Event::Round {
                        round: *round,
                        candidates: candidates.clone(),
                        picked: rev,
                    },
                ))
            }
            _ => None,
        })
        .expect("a multi-pick round exists under %Permitted=100");
    journal.frames[idx].event = flipped;
    let mut bytes = Vec::new();
    journal.write_stream(&mut bytes).unwrap();
    fs::write(&journal_path, bytes).unwrap();

    let report = check(&dir, &matrix).unwrap();
    assert!(!report.passed(), "flipped tie-break must diverge");
    let finding = report
        .findings
        .iter()
        .find(|f| &f.entry == entry)
        .expect("finding names the perturbed entry");
    assert_eq!(
        finding.clock,
        Some(idx as u64),
        "divergence pinned to the flipped round's logical clock: {finding}"
    );
    assert!(
        finding.phase == "replay" || finding.phase == "rerun",
        "frame-level phase, got {}",
        finding.phase
    );
    // The untouched entry stays green.
    assert!(
        report.findings.iter().all(|f| &f.entry == entry),
        "only the perturbed entry diverges"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_journal_is_a_load_finding() {
    let dir = scratch("truncated");
    let matrix = small_matrix();
    record(&dir, &matrix).unwrap();
    let journal_path = dir.join(&matrix[0].name).join("journal.jsonl");
    let text = fs::read_to_string(&journal_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // Drop the footer: the capture looks unsealed.
    fs::write(&journal_path, lines[..lines.len() - 1].join("\n")).unwrap();
    let report = check(&dir, &matrix).unwrap();
    let finding = report
        .findings
        .iter()
        .find(|f| f.entry == matrix[0].name)
        .expect("truncated journal surfaces");
    assert_eq!(finding.phase, "load");
    assert!(finding.detail.contains("footer"), "{}", finding.detail);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn coverage_drift_is_flagged_both_ways() {
    let dir = scratch("coverage");
    let mut matrix = small_matrix();
    record(&dir, &matrix).unwrap();

    // Matrix grows: the new cell has no baseline yet.
    let extra_strategy: Strategy = "NCE40".parse().unwrap();
    matrix.push(EntrySpec {
        name: format!("fanout-{extra_strategy}-s7"),
        params: matrix[0].params,
        seed: 7,
        strategy: extra_strategy,
        delta: false,
    });
    let report = check(&dir, &matrix).unwrap();
    assert!(report
        .findings
        .iter()
        .any(|f| f.phase == "coverage" && f.detail.contains("missing")));

    // Corpus holds an entry the matrix no longer has.
    matrix.remove(2);
    matrix.remove(0);
    let report = check(&dir, &matrix).unwrap();
    assert!(report
        .findings
        .iter()
        .any(|f| f.phase == "coverage" && f.detail.contains("stale")));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn bless_reports_added_unchanged_updated_and_removed() {
    let dir = scratch("bless");
    let mut matrix = small_matrix();

    // First bless on an empty dir: everything is added.
    let summary = bless(&dir, &matrix).unwrap();
    assert!(summary
        .entries
        .iter()
        .all(|(_, s)| *s == BlessStatus::Added));
    assert_eq!(summary.changed(), 2);

    // Second bless with nothing changed: everything unchanged.
    let summary = bless(&dir, &matrix).unwrap();
    assert!(summary
        .entries
        .iter()
        .all(|(_, s)| *s == BlessStatus::Unchanged));
    assert_eq!(summary.changed(), 0);

    // Tamper one baseline, then bless: reported as updated with the
    // first diverging clock.
    let journal_path = dir.join(&matrix[0].name).join("journal.jsonl");
    let mut journal = read_journal(BufReader::new(fs::File::open(&journal_path).unwrap())).unwrap();
    journal.frames.truncate(journal.frames.len() / 2);
    let mut bytes = Vec::new();
    journal.write_stream(&mut bytes).unwrap();
    fs::write(&journal_path, bytes).unwrap();
    let summary = bless(&dir, &matrix).unwrap();
    let (_, status) = summary
        .entries
        .iter()
        .find(|(n, _)| n == &matrix[0].name)
        .unwrap();
    assert!(
        matches!(
            status,
            BlessStatus::Updated {
                first_diff_clock: Some(_),
                ..
            }
        ),
        "tampered baseline re-blessed: {status:?}"
    );
    // And the corpus is green again afterwards.
    assert!(check(&dir, &matrix).unwrap().passed());

    // Shrink the matrix: bless removes the stale entry.
    let dropped = matrix.pop().unwrap();
    let summary = bless(&dir, &matrix).unwrap();
    assert!(summary
        .entries
        .iter()
        .any(|(n, s)| n == &dropped.name && *s == BlessStatus::Removed));
    assert!(!dir.join(&dropped.name).exists());
    fs::remove_dir_all(&dir).ok();
}

/// Delta cells capture deterministically: the blessed journal of a
/// full-reuse resubmission is a strict prefix of `Retained` frames
/// with no driver events, it replays green through the same
/// `check` path as cold cells, and re-recording is byte-stable.
#[test]
fn delta_entries_capture_retained_frames_and_check_green() {
    let dir = scratch("delta");
    let strategy: Strategy = "PSE100".parse().unwrap();
    let matrix = vec![EntrySpec {
        name: format!("delta-fanout-{strategy}-s7"),
        params: PatternParams {
            nb_nodes: 12,
            nb_rows: 4,
            pct_enabled: 60,
            ..Default::default()
        },
        seed: 7,
        strategy,
        delta: true,
    }];
    record(&dir, &matrix).unwrap();

    let file = fs::File::open(dir.join(&matrix[0].name).join("journal.jsonl")).unwrap();
    let journal = read_journal(BufReader::new(file)).unwrap();
    assert!(!journal.frames.is_empty(), "full reuse still adopts values");
    assert!(
        matches!(journal.frames[0].event, Event::Retained { .. }),
        "a delta journal opens with the adopted Retained prefix"
    );
    for frame in &journal.frames {
        assert!(
            !matches!(frame.event, Event::Round { .. } | Event::Complete { .. }),
            "a full-reuse delta recomputes nothing, got driver event {:?}",
            frame.event
        );
    }

    assert!(check(&dir, &matrix).unwrap().passed());

    // Re-recording the same cell is byte-stable (snapshot capture and
    // adoption introduce no nondeterminism).
    let summary = bless(&dir, &matrix).unwrap();
    assert!(summary
        .entries
        .iter()
        .all(|(_, s)| *s == BlessStatus::Unchanged));
    fs::remove_dir_all(&dir).ok();
}

/// The checked-in corpus under `corpus/` at the repository root must
/// stay green for the engine in this tree — the same gate CI runs via
/// `dflow-corpus check`, wired into the test suite so plain
/// `cargo test` catches behavioral regressions too.
#[test]
fn checked_in_corpus_is_green() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    assert!(
        dir.is_dir(),
        "checked-in corpus missing at {}; run `dflow-corpus record`",
        dir.display()
    );
    let report = check(&dir, &default_matrix()).unwrap();
    assert!(report.passed(), "{}", report.to_text());
}

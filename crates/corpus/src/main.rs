//! `dflow-corpus` — record / check / bless the journal regression
//! corpus.
//!
//! ```text
//! dflow-corpus record [--dir corpus]
//!     capture every matrix cell into an empty corpus (first-time setup)
//! dflow-corpus check  [--dir corpus] [--report FILE]
//!     replay + re-execute every blessed baseline; nonzero exit on any
//!     divergence; --report writes the structured findings as JSON
//! dflow-corpus bless  [--dir corpus]
//!     re-capture the matrix, overwrite baselines, print what changed
//! ```
//!
//! Exit codes: `0` success / corpus green, `1` divergences found,
//! `2` usage or operational error.

use std::path::PathBuf;
use std::process::ExitCode;

use dflow_corpus::{bless, check, default_dir, default_matrix, record};

struct Args {
    command: String,
    dir: PathBuf,
    report: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!("usage: dflow-corpus <record|check|bless> [--dir DIR] [--report FILE]");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut dir = default_dir();
    let mut report = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--dir" => dir = PathBuf::from(args.next().ok_or_else(usage)?),
            "--report" => report = Some(PathBuf::from(args.next().ok_or_else(usage)?)),
            _ => return Err(usage()),
        }
    }
    Ok(Args {
        command,
        dir,
        report,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let matrix = default_matrix();
    match args.command.as_str() {
        "record" => match record(&args.dir, &matrix) {
            Ok(written) => {
                println!(
                    "recorded {} corpus entries into {}",
                    written.len(),
                    args.dir.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("record failed: {e}");
                ExitCode::from(2)
            }
        },
        "check" => match check(&args.dir, &matrix) {
            Ok(result) => {
                print!("{}", result.to_text());
                if let Some(path) = &args.report {
                    let json = serde::json::to_string(&result) + "\n";
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("cannot write report {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                    eprintln!("(report written to {})", path.display());
                }
                if result.passed() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("check failed: {e}");
                ExitCode::from(2)
            }
        },
        "bless" => match bless(&args.dir, &matrix) {
            Ok(summary) => {
                print!("{}", summary.to_text());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bless failed: {e}");
                ExitCode::from(2)
            }
        },
        _ => usage(),
    }
}

//! The journal regression corpus: blessed capture/replay baselines
//! that turn the flight-recorder subsystem into a behavioral
//! regression oracle.
//!
//! A *corpus* is a checked-in directory of canonical journals — one
//! entry per cell of a deterministic matrix of `dflowgen`-generated
//! flows × execution strategies — each stored with a [`EntryManifest`]
//! (schema fingerprint, strategy, seed, journal format version) and
//! its journal in the streaming wire format
//! ([`decisionflow::journal::read_journal`]).
//!
//! Three operations, mirrored by the `dflow-corpus` CLI:
//!
//! * [`record`] — capture every matrix cell from scratch into an
//!   empty directory (first-time setup);
//! * [`check`] — replay every stored journal through
//!   [`ReplayEngine`] *and* re-execute the cell live, demanding a
//!   byte-identical journal. Any disagreement is a [`Finding`]
//!   naming the entry, the first diverging logical clock, and the
//!   recorded-vs-observed frames — a behavioral regression caught at
//!   the exact control decision that changed;
//! * [`bless`] — re-capture the matrix and overwrite the baselines,
//!   reporting exactly what changed per entry ([`BlessStatus`]), so a
//!   deliberate engine change lands with an auditable diff.
//!
//! The matrix records **in-process** (unit-time executor), which is
//! fully deterministic for every flow shape — chains and fan-outs
//! alike — because completion delivery is ordered by the executor's
//! `(time, seq)` calendar, not by OS threads. (Server captures of
//! fan-out flows are tape-nondeterministic and therefore make poor
//! baselines; see the PR 3 note in `CHANGES.md`.)

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::fs;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use decisionflow::api::Request;
use decisionflow::engine::Strategy;
use decisionflow::journal::{read_journal, schema_fingerprint, Frame, Journal, ReplayEngine};
use decisionflow::statestore::InstanceSnapshot;
use dflowgen::{generate, GeneratedFlow, PatternParams};
use serde::{Deserialize, Serialize};

/// One cell of the corpus matrix: which flow to generate and which
/// strategy to execute it under.
#[derive(Clone, Debug)]
pub struct EntrySpec {
    /// Directory name of the entry (unique within the corpus).
    pub name: String,
    /// Generator parameters of the flow.
    pub params: PatternParams,
    /// Generator seed.
    pub seed: u64,
    /// Execution strategy.
    pub strategy: Strategy,
    /// Capture as a **delta resubmission**: run the cell cold first,
    /// snapshot its completion, then record a resubmission of the
    /// identical sources against that snapshot. The blessed journal
    /// then opens with the adopted `Retained` frames (a full-reuse
    /// delta — generated flows are single-source, so any changed
    /// binding would empty the retained set), pinning the byte format
    /// of delta captures and the replay-side adoption path.
    pub delta: bool,
}

/// The default corpus matrix: two flow shapes (a pure chain and the
/// paper's 4-row fan-out grid) × all 8 strategy combinations ×
/// `%Permitted` ∈ {40, 100} — 32 entries covering every optimization
/// option (propagation, speculation, both heuristics) at partial and
/// full parallelism — plus a **delta-resubmission dimension**: both
/// shapes re-captured as full-reuse deltas under one conservative and
/// one speculative strategy, whose journals are all `Retained` frames.
pub fn default_matrix() -> Vec<EntrySpec> {
    let shapes = [
        (
            "chain",
            PatternParams {
                nb_nodes: 10,
                nb_rows: 1,
                pct_enabled: 75,
                ..Default::default()
            },
            4101,
        ),
        (
            "fanout",
            PatternParams {
                nb_nodes: 12,
                nb_rows: 4,
                pct_enabled: 60,
                ..Default::default()
            },
            4202,
        ),
    ];
    let mut out = Vec::new();
    for (shape, params, seed) in shapes {
        for permitted in [40u8, 100] {
            for strategy in Strategy::all_at(permitted) {
                out.push(EntrySpec {
                    name: format!("{shape}-{strategy}-s{seed}"),
                    params,
                    seed,
                    strategy,
                    delta: false,
                });
            }
        }
        for strategy_name in ["PCE100", "NSE40"] {
            let strategy: Strategy = strategy_name.parse().expect("known strategy");
            out.push(EntrySpec {
                name: format!("delta-{shape}-{strategy}-s{seed}"),
                params,
                seed,
                strategy,
                delta: true,
            });
        }
    }
    out
}

/// Per-entry metadata stored next to the journal, so `check` can
/// regenerate the flow and validate provenance without trusting the
/// journal bytes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EntryManifest {
    /// Entry name (matches the directory).
    pub name: String,
    /// Journal wire-format version at capture time.
    pub journal_version: u32,
    /// Structural fingerprint of the generated schema.
    pub schema_fingerprint: u64,
    /// Strategy string (e.g. `PSE100`).
    pub strategy: String,
    /// Generator seed.
    pub seed: u64,
    /// Generator parameters.
    pub params: PatternParams,
    /// Number of frames in the blessed journal.
    pub frames: u64,
    /// Response time of the blessed run, in units of processing.
    pub time_units: u64,
}

/// A corpus operation failed outright (IO, generation, execution) —
/// distinct from a [`Finding`], which is a successful check that
/// found a divergence.
#[derive(Debug)]
pub struct CorpusError(String);

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CorpusError {}

fn err(detail: impl std::fmt::Display) -> CorpusError {
    CorpusError(detail.to_string())
}

const MANIFEST_FILE: &str = "manifest.json";
const JOURNAL_FILE: &str = "journal.jsonl";

/// Capture one matrix cell: generate the flow, run it recorded, and
/// return the manifest plus the journal. Delta cells run cold
/// unrecorded first, then record the resubmission against the cold
/// completion's snapshot.
fn capture(spec: &EntrySpec) -> Result<(EntryManifest, Journal), CorpusError> {
    let flow: GeneratedFlow = generate(spec.params, spec.seed)
        .map_err(|e| err(format!("{}: generation failed: {e}", spec.name)))?;
    let mut request = Request::with_schema(Arc::clone(&flow.schema))
        .sources(flow.sources.clone())
        .strategy(spec.strategy)
        .record_journal(true);
    if spec.delta {
        let cold = Request::with_schema(Arc::clone(&flow.schema))
            .sources(flow.sources.clone())
            .strategy(spec.strategy)
            .run()
            .map_err(|e| err(format!("{}: cold seeding run failed: {e}", spec.name)))?;
        let prior = InstanceSnapshot::capture(&cold.outcome.runtime, spec.name.as_str());
        request = request.delta(Arc::new(prior));
    }
    let report = request
        .run()
        .map_err(|e| err(format!("{}: execution failed: {e}", spec.name)))?;
    let journal = report.journal.expect("journal requested");
    let manifest = EntryManifest {
        name: spec.name.clone(),
        journal_version: journal.version,
        schema_fingerprint: journal.schema_fingerprint,
        strategy: spec.strategy.to_string(),
        seed: spec.seed,
        params: spec.params,
        frames: journal.len() as u64,
        time_units: report.outcome.time_units,
    };
    Ok((manifest, journal))
}

fn write_entry(dir: &Path, manifest: &EntryManifest, journal: &Journal) -> Result<(), CorpusError> {
    let entry_dir = dir.join(&manifest.name);
    fs::create_dir_all(&entry_dir)
        .map_err(|e| err(format!("{}: mkdir failed: {e}", manifest.name)))?;
    fs::write(
        entry_dir.join(MANIFEST_FILE),
        serde::json::to_string(manifest) + "\n",
    )
    .map_err(|e| err(format!("{}: manifest write failed: {e}", manifest.name)))?;
    let file = fs::File::create(entry_dir.join(JOURNAL_FILE))
        .map_err(|e| err(format!("{}: journal create failed: {e}", manifest.name)))?;
    let mut w = BufWriter::new(file);
    journal
        .write_stream(&mut w)
        .map_err(|e| err(format!("{}: journal write failed: {e}", manifest.name)))?;
    Ok(())
}

fn read_entry(dir: &Path, name: &str) -> Result<(EntryManifest, Journal), String> {
    let entry_dir = dir.join(name);
    let manifest_raw = fs::read_to_string(entry_dir.join(MANIFEST_FILE))
        .map_err(|e| format!("manifest unreadable: {e}"))?;
    let manifest: EntryManifest =
        serde::json::from_str(&manifest_raw).map_err(|e| format!("manifest malformed: {e}"))?;
    let file = fs::File::open(entry_dir.join(JOURNAL_FILE))
        .map_err(|e| format!("journal unreadable: {e}"))?;
    let journal =
        read_journal(BufReader::new(file)).map_err(|e| format!("journal malformed: {e}"))?;
    Ok((manifest, journal))
}

/// Entry directories present on disk, sorted.
fn entry_dirs(dir: &Path) -> Result<Vec<String>, CorpusError> {
    let mut out = Vec::new();
    let rd = fs::read_dir(dir).map_err(|e| err(format!("cannot read {}: {e}", dir.display())))?;
    for e in rd {
        let e = e.map_err(|e| err(format!("cannot read {}: {e}", dir.display())))?;
        if e.path().is_dir() {
            out.push(e.file_name().to_string_lossy().into_owned());
        }
    }
    out.sort();
    Ok(out)
}

/// Record every matrix cell into `dir` (creating it), overwriting any
/// existing entries. Returns the entry names written.
pub fn record(dir: &Path, specs: &[EntrySpec]) -> Result<Vec<String>, CorpusError> {
    fs::create_dir_all(dir).map_err(|e| err(format!("cannot create corpus dir: {e}")))?;
    let mut written = Vec::with_capacity(specs.len());
    for spec in specs {
        let (manifest, journal) = capture(spec)?;
        write_entry(dir, &manifest, &journal)?;
        written.push(spec.name.clone());
    }
    Ok(written)
}

/// One divergence (or corpus-integrity problem) surfaced by [`check`].
#[derive(Clone, Debug, Serialize)]
pub struct Finding {
    /// The corpus entry concerned.
    pub entry: String,
    /// Which phase caught it: `load`, `manifest`, `coverage`,
    /// `replay`, or `rerun`.
    pub phase: String,
    /// First diverging logical clock, when frame-level.
    pub clock: Option<u64>,
    /// Human-readable description.
    pub detail: String,
    /// The blessed frame at `clock` (canonical JSON), when frame-level.
    pub recorded_frame: Option<String>,
    /// The frame the current engine produced at `clock` (canonical
    /// JSON), when frame-level.
    pub observed_frame: Option<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.phase, self.entry)?;
        if let Some(clock) = self.clock {
            write!(f, " @ clock {clock}")?;
        }
        write!(f, ": {}", self.detail)?;
        if let Some(rec) = &self.recorded_frame {
            write!(f, "\n    blessed:  {rec}")?;
        }
        if let Some(obs) = &self.observed_frame {
            write!(f, "\n    observed: {obs}")?;
        }
        Ok(())
    }
}

/// The structured result of a [`check`] run — serialized as the CI
/// divergence-report artifact.
#[derive(Debug, Serialize)]
pub struct CheckReport {
    /// Entries examined (present on disk or expected by the matrix).
    pub entries_checked: usize,
    /// Everything that diverged; empty means the corpus is green.
    pub findings: Vec<Finding>,
}

impl CheckReport {
    /// True when every entry replayed and re-executed identically.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering (one paragraph per finding).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            let _ = writeln!(
                out,
                "corpus check: {} entries, no divergence",
                self.entries_checked
            );
        } else {
            let _ = writeln!(
                out,
                "corpus check: {} entries, {} divergence(s):",
                self.entries_checked,
                self.findings.len()
            );
            for f in &self.findings {
                let _ = writeln!(out, "  {f}");
            }
        }
        out
    }
}

/// First index at which two frame tapes disagree, if any (a shorter
/// tape that is a strict prefix diverges at its end).
fn first_frame_diff(blessed: &[Frame], observed: &[Frame]) -> Option<usize> {
    let shared = blessed.len().min(observed.len());
    (0..shared)
        .find(|&i| blessed[i] != observed[i])
        .or_else(|| (blessed.len() != observed.len()).then_some(shared))
}

fn frame_json(frames: &[Frame], i: usize) -> Option<String> {
    frames.get(i).map(serde::json::to_string)
}

/// Check one loaded entry against the current engine. Pushes findings;
/// returns early once a phase fails (later phases would only echo it).
/// `delta` comes from the matrix spec: the fresh rerun of a delta
/// entry must rebuild the prior snapshot the same way [`capture`] did.
fn check_entry(
    manifest: &EntryManifest,
    blessed: &Journal,
    delta: bool,
    findings: &mut Vec<Finding>,
) {
    let finding = |phase: &str, clock: Option<u64>, detail: String| Finding {
        entry: manifest.name.clone(),
        phase: phase.into(),
        clock,
        detail,
        recorded_frame: None,
        observed_frame: None,
    };

    // Manifest ↔ journal consistency: the journal bytes must be the
    // ones the manifest blessed.
    if blessed.version != manifest.journal_version
        || blessed.schema_fingerprint != manifest.schema_fingerprint
        || blessed.strategy != manifest.strategy
        || blessed.len() as u64 != manifest.frames
    {
        findings.push(finding(
            "manifest",
            None,
            format!(
                "journal disagrees with its manifest (version {}/{}, fingerprint {:#x}/{:#x}, \
                 strategy {}/{}, frames {}/{})",
                blessed.version,
                manifest.journal_version,
                blessed.schema_fingerprint,
                manifest.schema_fingerprint,
                blessed.strategy,
                manifest.strategy,
                blessed.len(),
                manifest.frames
            ),
        ));
        return;
    }

    // Regenerate the flow; the generator must still produce the
    // schema the journal was captured against.
    let flow = match generate(manifest.params, manifest.seed) {
        Ok(f) => f,
        Err(e) => {
            findings.push(finding("manifest", None, format!("generation failed: {e}")));
            return;
        }
    };
    let fp = schema_fingerprint(&flow.schema);
    if fp != manifest.schema_fingerprint {
        findings.push(finding(
            "manifest",
            None,
            format!(
                "generated schema fingerprint {fp:#x} != blessed {:#x} — \
                 dflowgen output drifted; bless the corpus if intentional",
                manifest.schema_fingerprint
            ),
        ));
        return;
    }

    // Phase 1 — replay identity: the current engine, re-driven by the
    // blessed tape, must re-derive every recorded frame.
    let replay = ReplayEngine::new(Arc::clone(&flow.schema), blessed.clone())
        .and_then(|engine| engine.replay());
    if let Err(d) = replay {
        findings.push(finding("replay", d.clock, d.to_string()));
        return;
    }

    // Phase 2 — fresh live run: re-execute the cell from scratch and
    // demand a byte-identical journal.
    let strategy: Strategy = match manifest.strategy.parse() {
        Ok(s) => s,
        Err(e) => {
            findings.push(finding("manifest", None, format!("bad strategy: {e}")));
            return;
        }
    };
    let mut request = Request::with_schema(Arc::clone(&flow.schema))
        .sources(flow.sources.clone())
        .strategy(strategy)
        .record_journal(true);
    if delta {
        let cold = Request::with_schema(Arc::clone(&flow.schema))
            .sources(flow.sources.clone())
            .strategy(strategy)
            .run();
        match cold {
            Ok(report) => {
                let prior =
                    InstanceSnapshot::capture(&report.outcome.runtime, manifest.name.as_str());
                request = request.delta(Arc::new(prior));
            }
            Err(e) => {
                findings.push(finding(
                    "rerun",
                    None,
                    format!("cold seeding run failed: {e}"),
                ));
                return;
            }
        }
    }
    let fresh = match request.run() {
        Ok(report) => report.journal.expect("journal requested"),
        Err(e) => {
            findings.push(finding("rerun", None, format!("live run failed: {e}")));
            return;
        }
    };
    if fresh.to_json() != blessed.to_json() {
        match first_frame_diff(&blessed.frames, &fresh.frames) {
            Some(i) => findings.push(Finding {
                entry: manifest.name.clone(),
                phase: "rerun".into(),
                clock: Some(i as u64),
                detail: format!(
                    "fresh run diverges from blessed journal at clock {i} \
                     ({} blessed vs {} fresh frames)",
                    blessed.len(),
                    fresh.len()
                ),
                recorded_frame: frame_json(&blessed.frames, i),
                observed_frame: frame_json(&fresh.frames, i),
            }),
            None => findings.push(finding(
                "rerun",
                None,
                "fresh run agrees frame-for-frame but journal headers differ \
                 (source bindings or response time drifted)"
                    .into(),
            )),
        }
    }
}

/// Replay-check every corpus entry against the current engine build.
///
/// `specs` is the expected matrix: entries missing from disk or
/// present but not in the matrix are `coverage` findings (the corpus
/// and the matrix must move together, so adding a strategy without
/// blessing fails loudly).
pub fn check(dir: &Path, specs: &[EntrySpec]) -> Result<CheckReport, CorpusError> {
    let on_disk = entry_dirs(dir)?;
    let mut findings = Vec::new();
    let expected: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
    for spec in specs {
        if !on_disk.iter().any(|d| d == &spec.name) {
            findings.push(Finding {
                entry: spec.name.clone(),
                phase: "coverage".into(),
                clock: None,
                detail: "matrix entry missing from corpus — run `dflow-corpus bless`".into(),
                recorded_frame: None,
                observed_frame: None,
            });
        }
    }
    for name in &on_disk {
        if !expected.contains(&name.as_str()) {
            findings.push(Finding {
                entry: name.clone(),
                phase: "coverage".into(),
                clock: None,
                detail: "stale corpus entry not in the matrix — run `dflow-corpus bless`".into(),
                recorded_frame: None,
                observed_frame: None,
            });
            continue;
        }
        match read_entry(dir, name) {
            Err(detail) => findings.push(Finding {
                entry: name.clone(),
                phase: "load".into(),
                clock: None,
                detail,
                recorded_frame: None,
                observed_frame: None,
            }),
            Ok((manifest, blessed)) => {
                if manifest.name != *name {
                    findings.push(Finding {
                        entry: name.clone(),
                        phase: "manifest".into(),
                        clock: None,
                        detail: format!("manifest names {:?}", manifest.name),
                        recorded_frame: None,
                        observed_frame: None,
                    });
                    continue;
                }
                // invariant: `name` passed the `expected.contains` guard
                // above, so a matching spec exists.
                let delta = specs
                    .iter()
                    .find(|s| s.name == *name)
                    .expect("entry name verified against the matrix")
                    .delta;
                check_entry(&manifest, &blessed, delta, &mut findings);
            }
        }
    }
    // Examined = union of matrix cells and on-disk entries (missing
    // and stale ones both counted once).
    let mut examined: std::collections::BTreeSet<&str> = expected.iter().copied().collect();
    examined.extend(on_disk.iter().map(String::as_str));
    Ok(CheckReport {
        entries_checked: examined.len(),
        findings,
    })
}

/// What [`bless`] did to one entry.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum BlessStatus {
    /// Entry did not exist; baseline created.
    Added,
    /// Fresh capture is byte-identical to the blessed baseline.
    Unchanged,
    /// Baseline replaced.
    Updated {
        /// Frames in the previous baseline.
        old_frames: u64,
        /// Frames in the new baseline.
        new_frames: u64,
        /// First diverging clock, `None` when only the header changed.
        first_diff_clock: Option<u64>,
    },
    /// Entry on disk is not in the matrix; removed.
    Removed,
}

impl std::fmt::Display for BlessStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlessStatus::Added => write!(f, "added"),
            BlessStatus::Unchanged => write!(f, "unchanged"),
            BlessStatus::Updated {
                old_frames,
                new_frames,
                first_diff_clock,
            } => {
                write!(f, "updated ({old_frames} → {new_frames} frames")?;
                match first_diff_clock {
                    Some(c) => write!(f, ", first diff at clock {c})"),
                    None => write!(f, ", header only)"),
                }
            }
            BlessStatus::Removed => write!(f, "removed"),
        }
    }
}

/// The per-entry outcome of a [`bless`] run.
#[derive(Debug, Serialize)]
pub struct BlessSummary {
    /// `(entry, status)` in matrix order, removals last.
    pub entries: Vec<(String, BlessStatus)>,
}

impl BlessSummary {
    /// Number of entries whose baseline actually changed (added,
    /// updated, or removed).
    pub fn changed(&self) -> usize {
        self.entries
            .iter()
            .filter(|(_, s)| !matches!(s, BlessStatus::Unchanged))
            .count()
    }

    /// Human-readable rendering, one line per entry.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, status) in &self.entries {
            let _ = writeln!(out, "  {name}: {status}");
        }
        let _ = writeln!(
            out,
            "blessed {} entries, {} changed",
            self.entries.len(),
            self.changed()
        );
        out
    }
}

/// Re-capture every matrix cell and overwrite the baselines,
/// reporting exactly what changed. Entries on disk that left the
/// matrix are deleted.
pub fn bless(dir: &Path, specs: &[EntrySpec]) -> Result<BlessSummary, CorpusError> {
    fs::create_dir_all(dir).map_err(|e| err(format!("cannot create corpus dir: {e}")))?;
    let mut entries = Vec::new();
    for spec in specs {
        let (manifest, fresh) = capture(spec)?;
        let status = match read_entry(dir, &spec.name) {
            Err(_) => BlessStatus::Added,
            Ok((_, old)) if old.to_json() == fresh.to_json() => BlessStatus::Unchanged,
            Ok((_, old)) => BlessStatus::Updated {
                old_frames: old.len() as u64,
                new_frames: fresh.len() as u64,
                first_diff_clock: first_frame_diff(&old.frames, &fresh.frames).map(|i| i as u64),
            },
        };
        if status != BlessStatus::Unchanged {
            write_entry(dir, &manifest, &fresh)?;
        }
        entries.push((spec.name.clone(), status));
    }
    let expected: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
    for name in entry_dirs(dir)? {
        if !expected.contains(&name.as_str()) {
            fs::remove_dir_all(dir.join(&name))
                .map_err(|e| err(format!("{name}: removal failed: {e}")))?;
            entries.push((name, BlessStatus::Removed));
        }
    }
    Ok(BlessSummary { entries })
}

/// Default corpus location: `corpus/` relative to the working
/// directory (the repository root in CI).
pub fn default_dir() -> PathBuf {
    PathBuf::from("corpus")
}

//! `dflow-lint` — run the [`decisionflow::analysis`] static analyzer
//! over whole families of schemas from the command line.
//!
//! ```text
//! dflow-lint corpus [--dir DIR] [--json FILE]
//!     regenerate every corpus entry's schema (from its manifest's
//!     generator params + seed) and lint each one
//! dflow-lint matrix [--seed S] [--kill ATTR] [--json FILE]
//!     lint the flows of the default corpus matrix (one per shape);
//!     --seed regenerates the shapes under a different seed, --kill
//!     rewrites the named attribute's enabling condition to `false`
//!     first — a deliberate dead-path injection for exercising the
//!     analyzer end to end
//! dflow-lint dsl [--json FILE] FILE...
//!     parse each DSL schema file and lint it; `extern` functions are
//!     stubbed, and build failures surface as their DF-coded findings
//! ```
//!
//! Findings print per schema in [`Report::to_text`] form; `--json`
//! additionally writes the structured reports to a file (the CI
//! artifact). Exit codes: `0` no findings at Warn or above, `1`
//! Warn/Error findings present, `2` usage or operational error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use decisionflow::analysis::{self, Code, Finding, Report, Severity};
use decisionflow::dsl::{parse_schema, ExternRegistry};
use decisionflow::expr::Expr;
use decisionflow::schema::Schema;
use decisionflow::value::Value;
use dflow_corpus::{default_dir, default_matrix, EntryManifest};
use dflowgen::generate;
use serde::Serialize;

/// One linted schema: where it came from and what the analyzer said.
#[derive(Serialize)]
struct UnitReport {
    /// Identity of the schema (corpus entry, matrix shape, or file).
    unit: String,
    /// The analyzer's report.
    report: Report,
}

/// The JSON artifact: every unit examined, findings and all.
#[derive(Serialize)]
struct LintReport {
    units: Vec<UnitReport>,
}

struct Args {
    command: String,
    dir: PathBuf,
    seed: Option<u64>,
    kill: Option<String>,
    json: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn usage(detail: &str) -> String {
    format!(
        "{detail}\nusage: dflow-lint <corpus|matrix|dsl> \
         [--dir DIR] [--seed S] [--kill ATTR] [--json FILE] [FILE...]"
    )
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(|| usage("missing command"))?;
    let mut args = Args {
        command,
        dir: default_dir(),
        seed: None,
        kill: None,
        json: None,
        files: Vec::new(),
    };
    while let Some(flag) = argv.next() {
        let value = |argv: &mut dyn Iterator<Item = String>| {
            argv.next()
                .ok_or_else(|| usage(&format!("flag {flag:?} needs a value")))
        };
        match flag.as_str() {
            "--dir" => args.dir = PathBuf::from(value(&mut argv)?),
            "--seed" => {
                args.seed = Some(
                    value(&mut argv)?
                        .parse()
                        .map_err(|e| usage(&format!("bad --seed: {e}")))?,
                )
            }
            "--kill" => args.kill = Some(value(&mut argv)?),
            "--json" => args.json = Some(PathBuf::from(value(&mut argv)?)),
            _ if flag.starts_with("--") => return Err(usage(&format!("unknown flag {flag:?}"))),
            _ => args.files.push(PathBuf::from(flag)),
        }
    }
    Ok(args)
}

/// Rebuild `schema` with the enabling condition of `victim` replaced
/// by `false` — the canonical "statically dead attribute" mutation.
fn kill_attr(schema: &Schema, victim: &str) -> Result<Arc<Schema>, String> {
    let vid = schema
        .lookup(victim)
        .ok_or_else(|| format!("--kill: no attribute named {victim:?}"))?;
    if schema.is_source(vid) {
        return Err(format!("--kill: {victim:?} is a source (no condition)"));
    }
    let mut b = decisionflow::schema::SchemaBuilder::new();
    for a in schema.attr_ids() {
        let def = schema.attr(a);
        let id = if def.task.is_source() {
            b.source(def.name.clone())
        } else {
            let enabling = if a == vid {
                Expr::Lit(false)
            } else {
                def.enabling.clone()
            };
            b.attr(
                def.name.clone(),
                def.task.clone(),
                def.inputs.clone(),
                enabling,
            )
        };
        debug_assert_eq!(id, a, "rebuild preserves attribute ids");
        if def.target {
            b.mark_target(id);
        }
    }
    b.build()
        .map(Arc::new)
        .map_err(|e| format!("mutated schema failed to build: {e}"))
}

/// Lint every corpus entry by regenerating its schema from the
/// manifest's generator params + seed (the journal bytes are not
/// trusted — same policy as `dflow-corpus check`).
fn lint_corpus(dir: &Path) -> Result<Vec<UnitReport>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut names: Vec<String> = Vec::new();
    for e in rd {
        let e = e.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        if e.path().is_dir() {
            names.push(e.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    if names.is_empty() {
        return Err(format!("no corpus entries under {}", dir.display()));
    }
    let mut units = Vec::new();
    for name in names {
        let manifest_path = dir.join(&name).join("manifest.json");
        let raw = std::fs::read_to_string(&manifest_path)
            .map_err(|e| format!("{name}: manifest unreadable: {e}"))?;
        let manifest: EntryManifest =
            serde::json::from_str(&raw).map_err(|e| format!("{name}: manifest malformed: {e}"))?;
        let flow = generate(manifest.params, manifest.seed)
            .map_err(|e| format!("{name}: generation failed: {e}"))?;
        units.push(UnitReport {
            unit: name,
            report: analysis::check(&flow.schema),
        });
    }
    Ok(units)
}

/// Lint the flows of the default matrix — one unit per distinct
/// (params, seed) shape, since the strategy axis does not change the
/// schema.
fn lint_matrix(seed: Option<u64>, kill: Option<&str>) -> Result<Vec<UnitReport>, String> {
    let mut units = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    for spec in default_matrix() {
        // Entry names are `<shape>-<strategy>-s<seed>`; one lint per
        // shape suffices — the strategy axis never changes the schema,
        // and delta-resubmission cells reuse a base shape's schema.
        if spec.delta {
            continue;
        }
        let shape = spec.name.split('-').next().unwrap_or("shape").to_string();
        if seen.contains(&shape) {
            continue;
        }
        seen.push(shape.clone());
        let seed = seed.unwrap_or(spec.seed);
        let flow =
            generate(spec.params, seed).map_err(|e| format!("{shape}: generation failed: {e}"))?;
        let schema = match kill {
            Some(victim) => kill_attr(&flow.schema, victim)?,
            None => flow.schema,
        };
        let unit = match kill {
            Some(victim) => format!("{shape}-s{seed}-kill-{victim}"),
            None => format!("{shape}-s{seed}"),
        };
        units.push(UnitReport {
            unit,
            report: analysis::check(&schema),
        });
    }
    Ok(units)
}

/// Stub every `extern <fn>` mentioned in the DSL text so lint does not
/// depend on the host program's registry — the analyzer never calls
/// task bodies.
fn stub_externs(text: &str) -> ExternRegistry {
    let mut reg = ExternRegistry::new();
    let words: Vec<&str> = text.split_whitespace().collect();
    for w in words.windows(2) {
        if w[0] == "extern" {
            reg.register(w[1], |_: &[Value]| Value::Null);
        }
    }
    reg
}

fn lint_dsl(files: &[PathBuf]) -> Result<Vec<UnitReport>, String> {
    if files.is_empty() {
        return Err(usage("dsl: at least one FILE"));
    }
    let mut units = Vec::new();
    for path in files {
        let unit = path.display().to_string();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{unit}: {e}"))?;
        let report = match parse_schema(&text, &stub_externs(&text)) {
            Ok(schema) => analysis::check(&schema),
            // Build failures come through as DF-coded messages
            // (`SchemaError::code` prefixes Display); re-lift them
            // into a structured finding. Plain parse errors are
            // operational.
            Err(e) => match Code::from_str_code(e.message.get(..5).unwrap_or_default()) {
                Some(code) => Report {
                    findings: vec![Finding {
                        code,
                        severity: Severity::Error,
                        attr: None,
                        module: None,
                        message: e.message.clone(),
                        details: Vec::new(),
                    }],
                    summary: Default::default(),
                },
                None => return Err(format!("{unit}: parse failed: {e}")),
            },
        };
        units.push(UnitReport { unit, report });
    }
    Ok(units)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let units = match args.command.as_str() {
        "corpus" => lint_corpus(&args.dir)?,
        "matrix" => lint_matrix(args.seed, args.kill.as_deref())?,
        "dsl" => lint_dsl(&args.files)?,
        other => return Err(usage(&format!("unknown command {other:?}"))),
    };
    let mut worst = None::<Severity>;
    for u in &units {
        println!("== {}", u.unit);
        print!("{}", u.report.to_text());
        worst = worst.max(u.report.worst());
    }
    let failed = worst >= Some(Severity::Warn);
    println!(
        "dflow-lint: {} schema(s), {}",
        units.len(),
        if failed {
            "findings at warn or above"
        } else {
            "clean (at warn threshold)"
        }
    );
    if let Some(path) = &args.json {
        let artifact = LintReport { units };
        std::fs::write(path, serde::json::to_string(&artifact) + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dflow-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shapes_lint_clean_at_warn_threshold() {
        let units = lint_matrix(None, None).unwrap();
        assert_eq!(units.len(), 2, "two distinct shapes in the matrix");
        for u in &units {
            assert!(
                u.report.at_or_above(Severity::Warn).next().is_none(),
                "{}: unexpected findings:\n{}",
                u.unit,
                u.report.to_text()
            );
        }
    }

    #[test]
    fn killed_attribute_is_flagged_by_name() {
        let units = lint_matrix(None, Some("n0_1")).unwrap();
        let flagged = units.iter().any(|u| {
            u.report.findings.iter().any(|f| {
                f.code == Code::DeadAttr
                    && f.severity >= Severity::Warn
                    && f.attr.as_deref() == Some("n0_1")
            })
        });
        assert!(flagged, "DF001 must name the dead attribute");
    }

    #[test]
    fn kill_rejects_unknown_and_source_attrs() {
        assert!(lint_matrix(None, Some("no_such_attr")).is_err());
        assert!(lint_matrix(None, Some("source")).is_err());
    }

    #[test]
    fn dsl_build_failures_become_coded_findings() {
        let dir = std::env::temp_dir().join("dflow_lint_dsl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("no_targets.dfs");
        std::fs::write(&path, "source s\n").unwrap();
        let units = lint_dsl(&[path]).unwrap();
        assert_eq!(units[0].report.findings[0].code, Code::NoTargets);
        assert!(units[0].report.has_errors());
    }
}

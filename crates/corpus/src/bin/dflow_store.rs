//! `dflow-store` — operate on a durable event-store directory from
//! the command line: integrity checks, history listing, time-travel
//! replay, and compaction.
//!
//! ```text
//! dflow-store fsck DIR [--json FILE]
//!     read-only integrity check: decode every segment, verify
//!     checksums and the exactly-once lifecycle; torn tails (the
//!     expected crash artifact) are warnings, everything else is an
//!     error. `--json` writes the full FsckReport (the CI artifact).
//! dflow-store ls DIR
//!     read-only listing of the store's history: sealed instances
//!     (outcome, attempt, frames) and pending ones a reopen would
//!     re-execute.
//! dflow-store replay DIR ID [--schema FILE.dsl] [--tape FILE]
//!     reconstruct instance ID's journal from the WAL (time travel).
//!     With `--schema`, re-execute it through the ReplayEngine and
//!     cross-check every frame; without, print the tape summary.
//!     `--tape` writes the journal in capture stream format.
//! dflow-store compact DIR
//!     rewrite the store to a single segment holding only accept
//!     records and the frames of each instance's final attempt.
//! ```
//!
//! The store must be quiescent (no live `EngineServer` appending to
//! it) for `compact`; `fsck`, `ls`, and `replay` are read-only and
//! safe on a crashed store. Exit codes: `0` clean, `1` integrity
//! findings or divergence, `2` usage or operational error.

use std::path::PathBuf;
use std::process::ExitCode;

use decisionflow::dsl::{parse_schema, ExternRegistry};
use decisionflow::journal::ReplayEngine;
use decisionflow::store::{self, SealOutcome};
use decisionflow::value::Value;

struct Args {
    command: String,
    dir: PathBuf,
    id: Option<u64>,
    schema: Option<PathBuf>,
    tape: Option<PathBuf>,
    json: Option<PathBuf>,
}

fn usage(detail: &str) -> String {
    format!(
        "{detail}\nusage: dflow-store <fsck|ls|replay|compact> DIR \
         [ID] [--schema FILE] [--tape FILE] [--json FILE]"
    )
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(|| usage("missing command"))?;
    let mut args = Args {
        command,
        dir: PathBuf::new(),
        id: None,
        schema: None,
        tape: None,
        json: None,
    };
    let mut positional: Vec<String> = Vec::new();
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--schema" => args.schema = Some(PathBuf::from(value("--schema")?)),
            "--tape" => args.tape = Some(PathBuf::from(value("--tape")?)),
            "--json" => args.json = Some(PathBuf::from(value("--json")?)),
            other if other.starts_with("--") => {
                return Err(usage(&format!("unknown flag {other}")))
            }
            _ => positional.push(arg),
        }
    }
    let mut positional = positional.into_iter();
    args.dir = PathBuf::from(
        positional
            .next()
            .ok_or_else(|| usage("missing store DIR"))?,
    );
    if let Some(id) = positional.next() {
        args.id = Some(
            id.parse()
                .map_err(|_| usage(&format!("instance id {id:?} is not a number")))?,
        );
    }
    if let Some(extra) = positional.next() {
        return Err(usage(&format!("unexpected argument {extra:?}")));
    }
    Ok(args)
}

fn outcome_str(outcome: SealOutcome) -> &'static str {
    match outcome {
        SealOutcome::Completed => "completed",
        SealOutcome::DeadlineExceeded => "deadline-exceeded",
        SealOutcome::Abandoned => "abandoned",
    }
}

fn fsck(args: &Args) -> Result<ExitCode, String> {
    let report = store::fsck(&args.dir).map_err(|e| e.to_string())?;
    print!("{}", report.to_text());
    if let Some(path) = &args.json {
        let json = serde::json::to_string(&report);
        std::fs::write(path, &json).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("fsck report -> {}", path.display());
    }
    Ok(if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn ls(args: &Args) -> Result<ExitCode, String> {
    let state = store::inspect(&args.dir).map_err(|e| e.to_string())?;
    println!("{} sealed instance(s):", state.sealed.len());
    for s in &state.sealed {
        let label = s.label.as_deref().unwrap_or("-");
        println!(
            "  {:>8}  {:<18}  attempt {}  {:>5} frame(s)  schema {}  label {}",
            s.instance_id,
            outcome_str(s.outcome),
            s.attempt,
            s.frames,
            s.schema,
            label
        );
    }
    println!(
        "{} pending instance(s) (a reopen re-executes these):",
        state.pending.len()
    );
    for p in &state.pending {
        println!(
            "  {:>8}  next attempt {}  schema {}",
            p.request.instance_id, p.next_attempt, p.request.schema
        );
    }
    for f in &state.findings {
        println!("warning: {}: {}", f.segment, f.detail);
    }
    println!("next instance id: {}", state.next_instance_id);
    Ok(ExitCode::SUCCESS)
}

fn replay(args: &Args) -> Result<ExitCode, String> {
    let id = args
        .id
        .ok_or_else(|| usage("replay needs an instance ID"))?;
    let journal = store::fetch_journal(&args.dir, id).map_err(|e| e.to_string())?;
    println!(
        "instance {id}: {} frame(s), strategy {}, fingerprint {:#018x}",
        journal.len(),
        journal.strategy,
        journal.schema_fingerprint
    );
    for (name, value) in &journal.sources {
        println!("  source {name} = {value:?}");
    }
    if let Some(path) = &args.tape {
        let mut bytes = Vec::new();
        journal
            .write_stream(&mut bytes)
            .map_err(|e| format!("serialize tape: {e}"))?;
        std::fs::write(path, &bytes).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("tape -> {}", path.display());
    }
    let Some(schema_path) = &args.schema else {
        println!("no --schema given: tape inspected, not re-executed");
        return Ok(ExitCode::SUCCESS);
    };
    let text = std::fs::read_to_string(schema_path)
        .map_err(|e| format!("read {}: {e}", schema_path.display()))?;
    let schema = parse_schema(&text, &stub_externs(&text)).map_err(|e| e.message)?;
    let engine = match ReplayEngine::new(schema, journal) {
        Ok(engine) => engine,
        Err(d) => {
            eprintln!("replay rejected: {d}");
            return Ok(ExitCode::FAILURE);
        }
    };
    match engine.replay() {
        Ok(outcome) => {
            println!(
                "replay ok: {} frame(s) verified, {} attribute state(s)",
                outcome.frames_verified,
                outcome.record.attrs.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        Err(d) => {
            eprintln!("divergence: {d}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// Null-returning stand-ins for `extern` task bodies, so DSL schemas
/// parse without the host program's registry. A replayed journal
/// whose flow calls externs will report a value divergence at the
/// first extern completion — real bodies are needed for a faithful
/// re-execution.
fn stub_externs(text: &str) -> ExternRegistry {
    let mut reg = ExternRegistry::new();
    let words: Vec<&str> = text.split_whitespace().collect();
    for w in words.windows(2) {
        if w[0] == "extern" {
            reg.register(w[1], |_: &[Value]| Value::Null);
        }
    }
    reg
}

fn compact(args: &Args) -> Result<ExitCode, String> {
    let report = store::compact(&args.dir).map_err(|e| e.to_string())?;
    println!(
        "compacted {} segment(s) ({} bytes, {} records) -> {} segment(s) \
         ({} bytes, {} records), {} stale frame(s) dropped",
        report.segments_before,
        report.bytes_before,
        report.records_before,
        report.segments_after,
        report.bytes_after,
        report.records_after,
        report.frames_dropped
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let result = match args.command.as_str() {
        "fsck" => fsck(&args),
        "ls" => ls(&args),
        "replay" => replay(&args),
        "compact" => compact(&args),
        other => Err(usage(&format!("unknown command {other:?}"))),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("dflow-store: {e}");
            ExitCode::from(2)
        }
    }
}

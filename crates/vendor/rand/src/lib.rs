//! Minimal `rand` shim (0.8-flavoured API) backed by xoshiro256++.
//!
//! Implements exactly the surface this repository uses: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! with `seed_from_u64`, [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). Sampling is fully
//! deterministic under a fixed seed.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from uniform random bits (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, n)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n) - 1; // largest multiple of n, minus one
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ seeded via
    /// splitmix64. Deterministic, fast, and statistically solid for
    /// simulation workloads (not cryptographic).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be degenerate; splitmix64 cannot
            // produce four zeros from any seed, but belt and braces:
            if s == [0, 0, 0, 0] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(2);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(-5i64..7);
            assert!((-5..7).contains(&x));
            let y = r.gen_range(2u64..=4);
            assert!((2..=4).contains(&y));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let g: f64 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut r = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.gen_range(0usize..5)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "count {c} out of band");
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..50_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((11_500..13_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut r = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..10).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        assert!(v.choose(&mut r).is_some());
    }
}

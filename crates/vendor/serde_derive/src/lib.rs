//! Derive macros for the offline serde shim.
//!
//! Hand-rolled over `proc_macro::TokenTree` (no syn/quote available in
//! this environment). Supports the shapes this repository derives:
//! non-generic structs (named, tuple, unit) and enums (unit, tuple,
//! and struct variants), with field/variant attributes ignored.
//! Enums use the externally-tagged representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(inp) => gen_serialize(&inp)
            .parse()
            .expect("generated Serialize parses"),
        Err(e) => compile_error(&e),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(inp) => gen_deserialize(&inp)
            .parse()
            .expect("generated Deserialize parses"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip outer attributes and visibility.
    loop {
        match trees.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(trees.get(i), Some(TokenTree::Group(_))) {
                    i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = trees.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let item_kind = match trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    // Generics are not supported by the shim derive.
    if let Some(TokenTree::Punct(p)) = trees.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }

    match item_kind.as_str() {
        "struct" => match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                kind: Kind::NamedStruct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Input {
                name,
                kind: Kind::TupleStruct(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input {
                name,
                kind: Kind::UnitStruct,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                kind: Kind::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Parse `attr* vis? name: Type,` repeated; returns field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let trees: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        // Skip attributes.
        while matches!(&trees[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 1;
            if i < trees.len() && matches!(&trees[i], TokenTree::Group(_)) {
                i += 1;
            }
        }
        // Skip visibility.
        if matches!(&trees[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = trees.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let fname = match trees.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match trees.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':', found {other:?}")),
        }
        // Skip the type: consume until a top-level ',' (angle depth 0).
        let mut angle = 0i32;
        while i < trees.len() {
            match &trees[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past ',' (or end)
        fields.push(fname);
    }
    Ok(fields)
}

/// Count top-level comma-separated entries of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let trees: Vec<TokenTree> = stream.into_iter().collect();
    if trees.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0i32;
    let mut saw_token_since_comma = true;
    for t in &trees {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_token_since_comma = false;
            }
            _ => saw_token_since_comma = true,
        }
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let trees: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        while matches!(&trees[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 1;
            if i < trees.len() && matches!(&trees[i], TokenTree::Group(_)) {
                i += 1;
            }
        }
        let vname = match trees.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantFields::Unit,
        };
        // Skip a possible discriminant `= expr` up to the separator.
        while i < trees.len() {
            match &trees[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => break,
                _ => i += 1,
            }
        }
        i += 1; // past ','
        variants.push(Variant {
            name: vname,
            fields,
        });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => "::serde::Content::Null".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(\
                             ::std::string::String::from({vn:?})),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Serialize::to_content(__f0))]),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Content::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| format!("{f}: __{f}")).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_content(__{f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Content::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Content::Map(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, non_shorthand_field_patterns, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __c.as_seq().ok_or_else(|| \
                 ::serde::Error::expected(\"sequence\", {name:?}))?;\n\
                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::msg(::std::format!(\
                 \"tuple struct {name}: expected {n} fields, got {{}}\", __s.len()))); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::map_field(__m, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "let __m = __c.as_map().ok_or_else(|| \
                 ::serde::Error::expected(\"map\", {name:?}))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_content(__v)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __s = __v.as_seq().ok_or_else(|| \
                                 ::serde::Error::expected(\"sequence\", {vn:?}))?;\n\
                                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::msg(::std::format!(\
                                 \"variant {name}::{vn}: expected {n} fields, got {{}}\", \
                                 __s.len()))); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_content(\
                                         ::serde::map_field(__m, {f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __m = __v.as_map().ok_or_else(|| \
                                 ::serde::Error::expected(\"map\", {vn:?}))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                 ::std::format!(\"unknown unit variant {{__other:?}} for {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __v) = &__entries[0];\n\
                 match __k.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                 ::std::format!(\"unknown variant {{__other:?}} for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::expected(\
                 \"variant string or single-entry map\", {name:?})),\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) -> \
             ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

//! Minimal `serde` shim.
//!
//! Real serde is unavailable offline, so this crate provides the small
//! serialization core this repository needs:
//!
//! * a self-describing [`Content`] tree (the data model);
//! * [`Serialize`] / [`Deserialize`] traits mapping types to/from
//!   `Content`, with derive macros re-exported from `serde_derive`
//!   (externally-tagged enums, exactly like serde_json's default);
//! * a [`json`] module rendering `Content` to a canonical JSON string
//!   and parsing it back, giving byte-for-byte round-trips.
//!
//! The derive macros keep the usual spelling —
//! `#[derive(Serialize, Deserialize)]` — so swapping the real serde
//! back in is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;
use std::sync::Arc;

/// The self-describing data model every serializable value maps into.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when a value exceeds `i64::MAX`).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered string-keyed map (struct fields, enum payloads).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// View as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// View as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// View as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view across `I64`/`U64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(i) => Some(*i),
            Content::U64(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Unsigned view across `I64`/`U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(u) => Some(*u),
            Content::I64(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Floating view across all numeric contents.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(f) => Some(*f),
            Content::I64(i) => Some(*i as f64),
            Content::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Human-readable name of this content's shape (for errors).
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Free-form error.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }

    /// "expected X while deserializing T" error.
    pub fn expected(what: &str, ty: &str) -> Error {
        Error(format!("expected {what} while deserializing {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Look up a struct field in a map content (derive helper).
pub fn map_field<'a>(m: &'a [(String, Content)], key: &str) -> Result<&'a Content, Error> {
    m.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field {key:?}")))
}

/// Types that can render themselves into the [`Content`] data model.
pub trait Serialize {
    /// Convert to content.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Convert from content.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let i = c.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(i).map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let u = c.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(u).map_err(|_| Error::msg(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}
impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.as_f64().ok_or_else(|| Error::expected("number", "f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_bool().ok_or_else(|| Error::expected("bool", "bool"))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for Arc<str> {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for Arc<str> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(Arc::from)
            .ok_or_else(|| Error::expected("string", "Arc<str>"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::expected("sequence", "Vec"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let s = c.as_seq().ok_or_else(|| Error::expected("sequence", "tuple"))?;
                let expect = [$(stringify!($n)),+].len();
                if s.len() != expect {
                    return Err(Error::msg(format!(
                        "tuple length {} != {expect}", s.len()
                    )));
                }
                Ok(($($t::from_content(&s[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}
impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

pub mod json {
    //! Canonical JSON rendering of the [`Content`] tree.
    //!
    //! Deterministic output (map order preserved, floats via Rust's
    //! shortest-round-trip formatter), so equal values serialize to
    //! byte-identical strings.

    use super::{Content, Deserialize, Error, Serialize};

    /// Serialize a value to its canonical JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_content(&value.to_content(), &mut out);
        out
    }

    /// Parse a value back from JSON.
    pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
        T::from_content(&parse(s)?)
    }

    /// Parse JSON text into a raw [`Content`] tree.
    pub fn parse(s: &str) -> Result<Content, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }

    fn write_content(c: &Content, out: &mut String) {
        match c {
            Content::Null => out.push_str("null"),
            Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Content::I64(i) => out.push_str(&i.to_string()),
            Content::U64(u) => out.push_str(&u.to_string()),
            Content::F64(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f:?}"));
                } else {
                    // JSON has no NaN/±inf; encode as tagged strings.
                    out.push_str(if f.is_nan() {
                        "\"__f64::NaN\""
                    } else if *f > 0.0 {
                        "\"__f64::inf\""
                    } else {
                        "\"__f64::-inf\""
                    });
                }
            }
            Content::Str(s) => write_str(s, out),
            Content::Seq(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_content(v, out);
                }
                out.push(']');
            }
            Content::Map(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    write_content(v, out);
                }
                out.push('}');
            }
        }
    }

    fn write_str(s: &str, out: &mut String) {
        out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while let Some(b) = self.bytes.get(self.pos) {
                if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::msg(format!(
                    "expected {:?} at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn literal(&mut self, lit: &str) -> bool {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self) -> Result<Content, Error> {
            self.skip_ws();
            match self.peek() {
                None => Err(Error::msg("unexpected end of input")),
                Some(b'n') => {
                    if self.literal("null") {
                        Ok(Content::Null)
                    } else {
                        Err(Error::msg("invalid literal"))
                    }
                }
                Some(b't') => {
                    if self.literal("true") {
                        Ok(Content::Bool(true))
                    } else {
                        Err(Error::msg("invalid literal"))
                    }
                }
                Some(b'f') => {
                    if self.literal("false") {
                        Ok(Content::Bool(false))
                    } else {
                        Err(Error::msg("invalid literal"))
                    }
                }
                Some(b'"') => self.string().map(|s| match s.as_str() {
                    "__f64::NaN" => Content::F64(f64::NAN),
                    "__f64::inf" => Content::F64(f64::INFINITY),
                    "__f64::-inf" => Content::F64(f64::NEG_INFINITY),
                    _ => Content::Str(s),
                }),
                Some(b'[') => {
                    self.eat(b'[')?;
                    let mut items = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Content::Seq(items));
                    }
                    loop {
                        items.push(self.value()?);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => {
                                self.pos += 1;
                            }
                            Some(b']') => {
                                self.pos += 1;
                                return Ok(Content::Seq(items));
                            }
                            _ => return Err(Error::msg("expected ',' or ']'")),
                        }
                    }
                }
                Some(b'{') => {
                    self.eat(b'{')?;
                    let mut entries = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b'}') {
                        self.pos += 1;
                        return Ok(Content::Map(entries));
                    }
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.skip_ws();
                        self.eat(b':')?;
                        let val = self.value()?;
                        entries.push((key, val));
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => {
                                self.pos += 1;
                            }
                            Some(b'}') => {
                                self.pos += 1;
                                return Ok(Content::Map(entries));
                            }
                            _ => return Err(Error::msg("expected ',' or '}'")),
                        }
                    }
                }
                Some(_) => self.number(),
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    self.pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid utf8"))?,
                );
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| Error::msg("invalid \\u escape"))?,
                                    16,
                                )
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::msg("invalid codepoint"))?,
                                );
                                self.pos += 4;
                            }
                            _ => return Err(Error::msg("invalid escape")),
                        }
                        self.pos += 1;
                    }
                    _ => return Err(Error::msg("unterminated string")),
                }
            }
        }

        fn number(&mut self) -> Result<Content, Error> {
            let start = self.pos;
            let mut float = false;
            while let Some(b) = self.peek() {
                match b {
                    b'-' | b'+' | b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' => {
                        float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::msg("invalid utf8"))?;
            if text.is_empty() {
                return Err(Error::msg(format!("expected value at byte {start}")));
            }
            if !float {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Content::I64(i));
                }
                if let Ok(u) = text.parse::<u64>() {
                    return Ok(Content::U64(u));
                }
            }
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::msg(format!("invalid number {text:?}")))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scalar_roundtrips() {
            assert_eq!(to_string(&true), "true");
            assert!(from_str::<bool>("true").unwrap());
            assert_eq!(to_string(&-7i64), "-7");
            assert_eq!(from_str::<i64>("-7").unwrap(), -7);
            assert_eq!(to_string(&1.5f64), "1.5");
            assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
            assert_eq!(to_string(&u64::MAX), u64::MAX.to_string());
            assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
            assert_eq!(to_string("a\"b\n"), "\"a\\\"b\\n\"");
            assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
        }

        #[test]
        fn containers_roundtrip() {
            let v = vec![Some(1i64), None, Some(-3)];
            let s = to_string(&v);
            assert_eq!(s, "[1,null,-3]");
            assert_eq!(from_str::<Vec<Option<i64>>>(&s).unwrap(), v);

            let pairs = vec![("a".to_string(), 1u64), ("b".to_string(), 2)];
            let s = to_string(&pairs);
            assert_eq!(from_str::<Vec<(String, u64)>>(&s).unwrap(), pairs);
        }

        #[test]
        fn nonfinite_floats_roundtrip() {
            let v = vec![f64::INFINITY, f64::NEG_INFINITY];
            let back: Vec<f64> = from_str(&to_string(&v)).unwrap();
            assert_eq!(back, v);
            let nan: f64 = from_str(&to_string(&f64::NAN)).unwrap();
            assert!(nan.is_nan());
        }

        #[test]
        fn parse_rejects_garbage() {
            assert!(parse("").is_err());
            assert!(parse("{").is_err());
            assert!(parse("[1,]").is_err());
            assert!(parse("nul").is_err());
            assert!(parse("1 2").is_err());
        }

        #[test]
        fn whitespace_tolerated() {
            let c = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
            assert_eq!(
                c,
                Content::Map(vec![(
                    "a".into(),
                    Content::Seq(vec![Content::I64(1), Content::I64(2)])
                )])
            );
        }
    }
}

//! Minimal `criterion` shim.
//!
//! Implements the bench-authoring API this repository uses —
//! [`Criterion`], benchmark groups, [`Bencher::iter`],
//! [`criterion_group!`] / [`criterion_main!`] — with a simple
//! wall-clock median over a fixed number of timed batches. No
//! statistics engine, no HTML reports; results print to stdout as
//! `group/bench  median  iters/batch`.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measurement throughput annotation (printed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    batches: u32,
    iters_per_batch: u64,
    last: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, keeping the median batch duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that takes
        // roughly 5ms per batch, capped to keep total time bounded.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(5) || iters >= 1 << 20 {
                self.iters_per_batch = iters;
                break;
            }
            iters *= 2;
        }
        let mut samples: Vec<Duration> = (0..self.batches)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..self.iters_per_batch {
                    black_box(routine());
                }
                start.elapsed() / self.iters_per_batch as u32
            })
            .collect();
        samples.sort();
        self.last = Some(samples[samples.len() / 2]);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    batches: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { batches: 7 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(self.batches, &id.to_string(), None, f);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benches with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Shrink or grow the number of timed batches (compat no-op knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.batches = (n as u32).clamp(3, 50);
        self
    }

    /// Compat knob; the shim keeps its own fixed batch budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(
            self.criterion.batches,
            &format!("{}/{}", self.name, id),
            self.throughput,
            f,
        );
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(
            self.criterion.batches,
            &format!("{}/{}", self.name, id),
            self.throughput,
            |b| f(b, input),
        );
    }

    /// Finish the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(batches: u32, label: &str, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        batches,
        iters_per_batch: 1,
        last: None,
    };
    f(&mut b);
    match b.last {
        Some(t) => {
            let tp = match tp {
                Some(Throughput::Elements(n)) if t.as_nanos() > 0 => {
                    format!("  ({:.1} Melem/s)", n as f64 / t.as_nanos() as f64 * 1e3)
                }
                Some(Throughput::Bytes(n)) if t.as_nanos() > 0 => {
                    format!("  ({:.1} MiB/s)", n as f64 / t.as_nanos() as f64 * 953.7)
                }
                _ => String::new(),
            };
            println!("bench {label:<48} {t:>12.3?}{tp}");
        }
        None => println!("bench {label:<48} (no measurement)"),
    }
}

/// Collect benchmark functions into a runnable group, mirroring the
/// real criterion macro's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }
}

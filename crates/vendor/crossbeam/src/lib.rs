//! Minimal `crossbeam` shim: unbounded and bounded MPMC channels.
//!
//! Implements the subset of `crossbeam::channel` this repository uses:
//! [`channel::unbounded`] and [`channel::bounded`], cloneable
//! [`channel::Sender`] / [`channel::Receiver`], blocking `recv`,
//! non-blocking `try_recv` / `try_send`, and the timed receives
//! `recv_timeout` / `recv_deadline`. Built on a `Mutex<VecDeque>` +
//! two `Condvar`s; adequate for the worker pools and event
//! subscriptions here, not a performance-parity replacement.

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        /// `None` = unbounded; `Some(cap)` = at most `cap` queued.
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled when a value (or disconnect) is ready to receive.
        ready: Condvar,
        /// Signalled when a bounded queue frees a slot (or receivers
        /// disconnect), waking blocked senders.
        space: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity; the value is handed back.
        Full(T),
        /// All receivers dropped; the value is handed back.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recover the value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`] and
    /// [`Receiver::recv_deadline`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with the channel still empty.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }
    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }
    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }
    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out receiving on an empty channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }
    impl<T> std::error::Error for SendError<T> {}
    impl<T> std::error::Error for TrySendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for RecvTimeoutError {}

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Create a bounded channel holding at most `cap` values.
    ///
    /// Unlike real crossbeam, `cap == 0` (rendezvous) is not
    /// supported by this shim.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "this crossbeam shim does not support cap == 0");
        with_capacity(Some(cap))
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, blocking while a bounded channel is full;
        /// fails iff every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match st.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.0.space.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }

        /// Enqueue `value` without blocking: fails with
        /// [`TrySendError::Full`] when a bounded channel is at
        /// capacity, [`TrySendError::Disconnected`] when every
        /// receiver has been dropped.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = st.capacity {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn took(&self, value: T) -> T {
            self.0.space.notify_one();
            value
        }

        /// Dequeue, blocking until a value arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    return Ok(self.took(v));
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap();
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => {
                    drop(st);
                    Ok(self.took(v))
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeue, blocking at most `timeout`. A timeout too large to
        /// represent as a deadline (e.g. `Duration::MAX`) saturates to
        /// "wait forever", matching real crossbeam.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            match Instant::now().checked_add(timeout) {
                Some(deadline) => self.recv_deadline(deadline),
                None => self.recv().map_err(|_| RecvTimeoutError::Disconnected),
            }
        }

        /// Dequeue, blocking until `deadline` at the latest.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    return Ok(self.took(v));
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, timed_out) = self.0.ready.wait_timeout(st, left).unwrap();
                st = guard;
                if timed_out.timed_out() && st.queue.is_empty() && st.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.0.state.lock().unwrap().queue.len()
        }

        /// True when no values are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.0.space.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::{Duration, Instant};

    #[test]
    fn fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_try_send_reports_full_then_drains() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
        assert_eq!(TrySendError::Full(9).into_inner(), 9);
    }

    #[test]
    fn bounded_send_blocks_until_slot_frees() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        let t0 = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(20));
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_saturates_on_unrepresentable_deadline() {
        // Duration::MAX overflows Instant math; it must mean "wait
        // forever", not panic.
        let (tx, rx) = unbounded::<u32>();
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::MAX), Ok(3));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::MAX),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_deadline_in_past_returns_timeout_immediately() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_deadline(Instant::now()),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(1).unwrap();
        // A queued value is delivered even past the deadline.
        assert_eq!(rx.recv_deadline(Instant::now()), Ok(1));
    }
}

//! Minimal `crossbeam` shim: an unbounded MPMC channel.
//!
//! Implements the subset of `crossbeam::channel` this repository uses:
//! [`channel::unbounded`], cloneable [`channel::Sender`] /
//! [`channel::Receiver`], blocking `recv`, and non-blocking `try_recv`.
//! Built on a `Mutex<VecDeque>` + `Condvar`; adequate for the worker
//! pools here, not a performance-parity replacement.

pub mod channel {
    //! Unbounded multi-producer multi-consumer FIFO channel.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }
    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }
    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails iff every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking until a value arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap();
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.0.state.lock().unwrap().queue.len()
        }

        /// True when no values are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.state.lock().unwrap().receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }
}

//! Shard scaling: throughput of the sharded `EngineServer` as the
//! shard count grows, over Table-1 generated flows.
//!
//! A Fig-5-style sweep for the threading harness itself: each row runs
//! one (shard count × strategy) cell through
//! `dflowperf::run_server_load` — batched `submit_many` submissions,
//! wall-clock latency, per-shard gauges — and reports post-warmup
//! instances/second, mean response, the deepest per-shard job queue
//! observed at the end, and how many shards actually executed work.

use decisionflow::engine::Strategy;
use dflow_bench::harness::{f1, f2, ResultTable};
use dflowgen::{generate, GeneratedFlow, PatternParams};
use dflowperf::{run_server_load, ServerLoadConfig};

fn main() {
    let params = PatternParams {
        nb_nodes: 32,
        nb_rows: 4,
        pct_enabled: 75,
        ..Default::default()
    };
    let flows: Vec<GeneratedFlow> = (0..4)
        .map(|i| generate(params, 0x5CA1E + i).expect("valid pattern"))
        .collect();
    let strategies: Vec<Strategy> = ["PCE0", "PCE100", "PSE100", "NCE100"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let mut t = ResultTable::new(
        "Shard scaling — sharded EngineServer over Table-1 flows (nb_nodes=32)",
        &[
            "shards",
            "strategy",
            "throughput/s",
            "mean_resp_ms",
            "shards_used",
            "max_queue",
        ],
    );
    for &shards in &[1usize, 2, 4, 8] {
        for &strategy in &strategies {
            let out = run_server_load(
                &flows,
                strategy,
                ServerLoadConfig {
                    shards,
                    workers_per_shard: 2,
                    batch: 32,
                    total_instances: 512,
                    warmup_instances: 64,
                },
            )
            .expect("server build");
            assert_eq!(out.completed, 512);
            t.row(vec![
                shards.to_string(),
                strategy.to_string(),
                f1(out.throughput_per_sec),
                f2(out.responses_ms.mean()),
                out.shards_used.to_string(),
                out.stats.max_queue_depth().to_string(),
            ]);
        }
    }
    t.emit("shard_scaling.csv");
}

//! Shard scaling: throughput of the sharded `EngineServer` as the
//! shard count grows, over Table-1 generated flows.
//!
//! A Fig-5-style sweep for the threading harness itself: each row runs
//! one (shard count × strategy) cell as a closed-arrival `Workload`
//! on the `Server` backend — batched `submit_many` waves, wall-clock
//! latency, per-shard gauges — and reports post-warmup
//! instances/second, mean response, the deepest per-shard job queue
//! observed at the end, how many shards actually executed work, and
//! the per-stage latency percentiles from the server's telemetry
//! (queue-wait / execute / end-to-end). A second table breaks the
//! whole sweep's latency down by pipeline stage, from the merged
//! per-run histograms.
//!
//! Each task carries a wall-clock delay proportional to its declared
//! cost ([`GeneratedFlow::with_unit_delay`]), modeling the paper's
//! setting where tasks are remote-service queries that *wait*, not
//! local compute: a shard's capacity is then its worker count (how
//! many queries it can hold in flight), so N shards provide N× the
//! service capacity and the sweep measures how much of that the
//! submit → route → queue → complete harness actually delivers. A
//! CPU-bound body would instead saturate the host's cores and cap the
//! curve at core count, measuring the machine rather than the
//! harness.
//!
//! Flags:
//!
//! * `--smoke` — a reduced matrix (2 shard counts × 2 strategies,
//!   1/4 of the instances) sized for CI: it proves the sweep runs
//!   end to end and seeds the perf trajectory without spending
//!   minutes; it also *asserts* that every stage histogram of every
//!   run is non-empty, so a silently dead telemetry path fails CI;
//! * `--json PATH` — additionally emit the result table as a
//!   `BENCH_*.json` snapshot (see `ResultTable::to_json`), which the
//!   CI bench-smoke job publishes into the job summary;
//! * `--prom PATH` — write the last run's telemetry in Prometheus
//!   text exposition format (the CI bench-smoke job publishes it as
//!   an artifact).

use std::path::PathBuf;

use decisionflow::engine::Strategy;
use decisionflow::telemetry::{HistogramSnapshot, TelemetrySnapshot};
use dflow_bench::harness::{f1, f2, ResultTable};
use dflowgen::{generate, GeneratedFlow, PatternParams};
use dflowperf::{Arrival, Server, Workload};

struct Args {
    smoke: bool,
    json: Option<PathBuf>,
    prom: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut smoke = false;
    let mut json = None;
    let mut prom = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                json = Some(PathBuf::from(
                    args.next().expect("--json needs a file path"),
                ))
            }
            "--prom" => {
                prom = Some(PathBuf::from(
                    args.next().expect("--prom needs a file path"),
                ))
            }
            other => {
                panic!("unknown flag {other:?} (expected --smoke / --json PATH / --prom PATH)")
            }
        }
    }
    Args { smoke, json, prom }
}

/// The stages the sweep-wide breakdown table reports, in pipeline
/// order (matching `decisionflow::telemetry::Stage::ALL`).
const STAGES: [&str; 5] = ["route", "validate", "queue_wait", "execute", "e2e"];

fn main() {
    let args = parse_args();
    let params = PatternParams {
        nb_nodes: 32,
        nb_rows: 4,
        pct_enabled: 75,
        ..Default::default()
    };
    let n_flows: u64 = if args.smoke { 2 } else { 4 };
    // 100µs per cost unit ≈ 5–10ms of simulated query latency per
    // instance: long enough that shard capacity (workers holding
    // sleeping queries) dominates, short enough to keep the sweep in
    // seconds.
    let unit_delay = std::time::Duration::from_micros(100);
    let flows: Vec<GeneratedFlow> = (0..n_flows)
        .map(|i| {
            generate(params, 0x5CA1E + i)
                .expect("valid pattern")
                .with_unit_delay(unit_delay)
        })
        .collect();
    let strategy_names: &[&str] = if args.smoke {
        &["PCE100", "PSE100"]
    } else {
        &["PCE0", "PCE100", "PSE100", "NCE100"]
    };
    let strategies: Vec<Strategy> = strategy_names.iter().map(|s| s.parse().unwrap()).collect();
    let shard_counts: &[usize] = if args.smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let total_instances = if args.smoke { 128 } else { 512 };
    let warmup_instances = if args.smoke { 16 } else { 64 };

    let mode = if args.smoke { " (smoke)" } else { "" };
    let mut t = ResultTable::new(
        format!("Shard scaling{mode} — sharded EngineServer over Table-1 flows (nb_nodes=32)"),
        &[
            "shards",
            "strategy",
            "throughput/s",
            "mean_resp_ms",
            "shards_used",
            "max_queue",
            "p50_queue_ms",
            "p50_exec_ms",
            "p99_e2e_ms",
        ],
    );
    // Sweep-wide per-stage histograms, merged across every run.
    let mut merged: Vec<HistogramSnapshot> = vec![HistogramSnapshot::default(); STAGES.len()];
    let mut last_snapshot: Option<TelemetrySnapshot> = None;
    for &shards in shard_counts {
        for &strategy in &strategies {
            let out = Workload::new(flows.clone())
                .arrivals(Arrival::Closed {
                    clients: 32,
                    waves: 0,
                })
                .instances(total_instances)
                .warmup(warmup_instances)
                .strategy(strategy)
                .run(&Server {
                    shards,
                    workers_per_shard: 2,
                    ..Server::default()
                })
                .expect("server build");
            assert_eq!(out.completed, total_instances);
            let side = out.server.as_ref().expect("server stats");
            let tele = &side.telemetry;
            for (i, name) in STAGES.iter().enumerate() {
                let h = tele
                    .stage(name)
                    .unwrap_or_else(|| panic!("stage {name} missing from telemetry"));
                if args.smoke {
                    assert!(
                        !h.is_empty(),
                        "smoke: stage {name} histogram empty at shards={shards} {strategy}"
                    );
                }
                merged[i].merge(h);
            }
            let empty = HistogramSnapshot::default();
            let queue = tele.stage("queue_wait").unwrap_or(&empty);
            let exec = tele.stage("execute").unwrap_or(&empty);
            let e2e = tele.stage("e2e").unwrap_or(&empty);
            t.row(vec![
                shards.to_string(),
                strategy.to_string(),
                f1(out.throughput_per_sec),
                f2(out.responses.mean()),
                side.shards_used.to_string(),
                side.stats.max_queue_depth().to_string(),
                f2(queue.p50_ms()),
                f2(exec.p50_ms()),
                f2(e2e.p99_ms()),
            ]);
            last_snapshot = Some(tele.clone());
        }
    }
    t.emit("shard_scaling.csv");
    if let Some(path) = &args.json {
        t.emit_json(path);
    }

    let mut stage_table = ResultTable::new(
        format!("Per-stage latency{mode} — merged across the whole sweep"),
        &["stage", "count", "p50_ms", "p90_ms", "p99_ms"],
    );
    for (name, h) in STAGES.iter().zip(&merged) {
        stage_table.row(vec![
            name.to_string(),
            h.count().to_string(),
            f2(h.p50_ms()),
            f2(h.p90_ms()),
            f2(h.p99_ms()),
        ]);
    }
    stage_table.emit("shard_scaling_stages.csv");

    if let Some(path) = &args.prom {
        let snap = last_snapshot.expect("at least one run");
        if let Err(e) = std::fs::write(path, snap.render_prometheus()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("prometheus exposition -> {}", path.display());
        }
    }
}

//! Shard scaling: throughput of the sharded `EngineServer` as the
//! shard count grows, over Table-1 generated flows.
//!
//! A Fig-5-style sweep for the threading harness itself: each row runs
//! one (shard count × strategy) cell as a closed-arrival `Workload`
//! on the `Server` backend — batched `submit_many` waves, wall-clock
//! latency, per-shard gauges — and reports post-warmup
//! instances/second, mean response, the deepest per-shard job queue
//! observed at the end, and how many shards actually executed work.
//!
//! Flags:
//!
//! * `--smoke` — a reduced matrix (2 shard counts × 2 strategies,
//!   1/4 of the instances) sized for CI: it proves the sweep runs
//!   end to end and seeds the perf trajectory without spending
//!   minutes;
//! * `--json PATH` — additionally emit the result table as a
//!   `BENCH_*.json` snapshot (see `ResultTable::to_json`), which the
//!   CI bench-smoke job publishes into the job summary.

use std::path::PathBuf;

use decisionflow::engine::Strategy;
use dflow_bench::harness::{f1, f2, ResultTable};
use dflowgen::{generate, GeneratedFlow, PatternParams};
use dflowperf::{Arrival, Server, Workload};

struct Args {
    smoke: bool,
    json: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut smoke = false;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                json = Some(PathBuf::from(
                    args.next().expect("--json needs a file path"),
                ))
            }
            other => panic!("unknown flag {other:?} (expected --smoke / --json PATH)"),
        }
    }
    Args { smoke, json }
}

fn main() {
    let args = parse_args();
    let params = PatternParams {
        nb_nodes: 32,
        nb_rows: 4,
        pct_enabled: 75,
        ..Default::default()
    };
    let n_flows: u64 = if args.smoke { 2 } else { 4 };
    let flows: Vec<GeneratedFlow> = (0..n_flows)
        .map(|i| generate(params, 0x5CA1E + i).expect("valid pattern"))
        .collect();
    let strategy_names: &[&str] = if args.smoke {
        &["PCE100", "PSE100"]
    } else {
        &["PCE0", "PCE100", "PSE100", "NCE100"]
    };
    let strategies: Vec<Strategy> = strategy_names.iter().map(|s| s.parse().unwrap()).collect();
    let shard_counts: &[usize] = if args.smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let total_instances = if args.smoke { 128 } else { 512 };
    let warmup_instances = if args.smoke { 16 } else { 64 };

    let mode = if args.smoke { " (smoke)" } else { "" };
    let mut t = ResultTable::new(
        format!("Shard scaling{mode} — sharded EngineServer over Table-1 flows (nb_nodes=32)"),
        &[
            "shards",
            "strategy",
            "throughput/s",
            "mean_resp_ms",
            "shards_used",
            "max_queue",
        ],
    );
    for &shards in shard_counts {
        for &strategy in &strategies {
            let out = Workload::new(flows.clone())
                .arrivals(Arrival::Closed {
                    clients: 32,
                    waves: 0,
                })
                .instances(total_instances)
                .warmup(warmup_instances)
                .strategy(strategy)
                .run(&Server {
                    shards,
                    workers_per_shard: 2,
                })
                .expect("server build");
            assert_eq!(out.completed, total_instances);
            let side = out.server.as_ref().expect("server stats");
            t.row(vec![
                shards.to_string(),
                strategy.to_string(),
                f1(out.throughput_per_sec),
                f2(out.responses.mean()),
                side.shards_used.to_string(),
                side.stats.max_queue_depth().to_string(),
            ]);
        }
    }
    t.emit("shard_scaling.csv");
    if let Some(path) = &args.json {
        t.emit_json(path);
    }
}

//! Figure 7: effect of the degree of parallelism (`%Permitted`) on
//! response time (a) and work (b) for {PCC*, PCE*, PSC*, PSE*},
//! `nb_rows = 4`, `%enabled = 75`.
//!
//! Expected shape: Earliest beats Cheapest on time whenever propagation
//! is on, with the largest gains at 40–80% parallelism; both heuristics
//! consume about the same work.

use dflow_bench::harness::{f1, ResultTable};
use dflowgen::PatternParams;
use dflowperf::pattern_sweep;

fn main() {
    let reps = 30;
    let params = PatternParams {
        nb_rows: 4,
        pct_enabled: 75,
        ..Default::default()
    };
    let mut t = ResultTable::new(
        "Figure 7 — TimeInUnits / Work vs %Permitted (nb_rows=4, %enabled=75)",
        &[
            "%Permitted",
            "T:PCC",
            "T:PCE",
            "T:PSC",
            "T:PSE",
            "W:PCC",
            "W:PCE",
            "W:PSC",
            "W:PSE",
        ],
    );
    for p in [0u8, 20, 40, 60, 80, 100] {
        let seed = 0xF167;
        let pcc = pattern_sweep(params, format!("PCC{p}").parse().unwrap(), reps, seed);
        let pce = pattern_sweep(params, format!("PCE{p}").parse().unwrap(), reps, seed);
        let psc = pattern_sweep(params, format!("PSC{p}").parse().unwrap(), reps, seed);
        let pse = pattern_sweep(params, format!("PSE{p}").parse().unwrap(), reps, seed);
        t.row(vec![
            p.to_string(),
            f1(pcc.mean_response()),
            f1(pce.mean_response()),
            f1(psc.mean_response()),
            f1(pse.mean_response()),
            f1(pcc.mean_work()),
            f1(pce.mean_work()),
            f1(psc.mean_work()),
            f1(pse.mean_work()),
        ]);
    }
    t.emit("fig7.csv");
}

//! Figure 6: minimizing response time with maximal parallelism,
//! `nb_rows = 4`, `%enabled` sweeping 10–100.
//!
//! (a) TimeInUnits and (b) Work for {PC*100, PS*100, PCE0}. The paper's
//! `*` wildcard covers both scheduling heuristics, whose results are
//! close at 100% parallelism; we report their average for the starred
//! series (and each heuristic separately in the CSV).
//!
//! Expected shape: PC*100 cuts response time ~60% vs PCE0 at
//! `%enabled = 75` with little extra work; PS*100 gains at most ~10%
//! more time but pays significant extra work at low `%enabled`.

use dflow_bench::harness::{f1, ResultTable};
use dflowgen::PatternParams;
use dflowperf::pattern_sweep;

fn main() {
    let reps = 30;
    let mut t = ResultTable::new(
        "Figure 6 — TimeInUnits and Work vs %enabled (nb_rows=4)",
        &[
            "%enabled", "T:PC*100", "T:PS*100", "T:PCE0", "W:PC*100", "W:PS*100", "W:PCE0",
        ],
    );
    for pct in (10..=100).step_by(10) {
        let params = PatternParams {
            nb_rows: 4,
            pct_enabled: pct,
            ..Default::default()
        };
        let seed = 0xF166;
        let pce100 = pattern_sweep(params, "PCE100".parse().unwrap(), reps, seed);
        let pcc100 = pattern_sweep(params, "PCC100".parse().unwrap(), reps, seed);
        let pse100 = pattern_sweep(params, "PSE100".parse().unwrap(), reps, seed);
        let psc100 = pattern_sweep(params, "PSC100".parse().unwrap(), reps, seed);
        let pce0 = pattern_sweep(params, "PCE0".parse().unwrap(), reps, seed);
        let pc_t = 0.5 * (pce100.mean_response() + pcc100.mean_response());
        let ps_t = 0.5 * (pse100.mean_response() + psc100.mean_response());
        let pc_w = 0.5 * (pce100.mean_work() + pcc100.mean_work());
        let ps_w = 0.5 * (pse100.mean_work() + psc100.mean_work());
        t.row(vec![
            pct.to_string(),
            f1(pc_t),
            f1(ps_t),
            f1(pce0.mean_response()),
            f1(pc_w),
            f1(ps_w),
            f1(pce0.mean_work()),
        ]);
    }
    t.emit("fig6.csv");
}

//! Ablation: how much of the Propagation Algorithm's benefit comes
//! from **backward** propagation (unneeded-attribute detection) versus
//! **forward** propagation alone (eager condition evaluation)?
//!
//! §4 presents the two directions together; this harness separates
//! them with the engine's `disable_backward` option:
//!
//! * `N`   — naive: exact condition evaluation only;
//! * `P-fwd` — eager Kleene evaluation + forward disable cascades,
//!   but no unneeded pruning;
//! * `P-full` — the complete algorithm.
//!
//! Expected: forward-only already skips some work (early DISABLEs stop
//! chains), but the bulk of the saving at low `%enabled` comes from
//! backward pruning of enabled-but-unneeded attributes.

use decisionflow::engine::{RuntimeOptions, Strategy};
use dflow_bench::harness::{f1, ResultTable};
use dflowgen::PatternParams;
use dflowperf::pattern_sweep_with_options;

fn main() {
    let reps = 30;
    let seq: Strategy = "PCE0".parse().unwrap();
    let naive: Strategy = "NCE0".parse().unwrap();
    let fwd_only = RuntimeOptions {
        disable_backward: true,
    };
    let full = RuntimeOptions::default();

    let mut t = ResultTable::new(
        "Ablation — work by propagation direction (nb_rows=4, sequential PCE0)",
        &["%enabled", "N", "P-fwd", "P-full", "fwd gain%", "bwd gain%"],
    );
    for pct in [10u32, 25, 50, 75, 90, 100] {
        let params = PatternParams {
            nb_rows: 4,
            pct_enabled: pct,
            ..Default::default()
        };
        let n = pattern_sweep_with_options(params, naive, reps, 0xAB1A, full);
        let f = pattern_sweep_with_options(params, seq, reps, 0xAB1A, fwd_only);
        let p = pattern_sweep_with_options(params, seq, reps, 0xAB1A, full);
        let fwd_gain = 100.0 * (1.0 - f.mean_work() / n.mean_work());
        let bwd_gain = 100.0 * (1.0 - p.mean_work() / f.mean_work());
        t.row(vec![
            pct.to_string(),
            f1(n.mean_work()),
            f1(f.mean_work()),
            f1(p.mean_work()),
            f1(fwd_gain),
            f1(bwd_gain),
        ]);
    }
    t.emit("ablation.csv");
    println!("fwd gain: eager evaluation + forward cascades vs naive;");
    println!("bwd gain: unneeded-attribute pruning on top of forward-only.");
    println!("(Sequential-conservative work only moves with backward pruning:");
    println!(" conditions always resolve before launch in this setting, so");
    println!(" eagerness pays in *time under parallelism* — second table.)\n");

    // Where forward eagerness matters: response time at full
    // parallelism, where deciding conditions early unlocks launches.
    let par_n: Strategy = "NCE100".parse().unwrap();
    let par_p: Strategy = "PCE100".parse().unwrap();
    let mut t2 = ResultTable::new(
        "Ablation — TimeInUnits at 100% parallelism (eagerness effect)",
        &[
            "%enabled",
            "T:N",
            "T:P-fwd",
            "T:P-full",
            "fwd gain%",
            "bwd gain%",
        ],
    );
    for pct in [10u32, 25, 50, 75, 90] {
        let params = PatternParams {
            nb_rows: 4,
            pct_enabled: pct,
            ..Default::default()
        };
        let n = pattern_sweep_with_options(params, par_n, reps, 0xAB1A, full);
        let f = pattern_sweep_with_options(params, par_p, reps, 0xAB1A, fwd_only);
        let p = pattern_sweep_with_options(params, par_p, reps, 0xAB1A, full);
        t2.row(vec![
            pct.to_string(),
            f1(n.mean_response()),
            f1(f.mean_response()),
            f1(p.mean_response()),
            f1(100.0 * (1.0 - f.mean_response() / n.mean_response())),
            f1(100.0 * (1.0 - p.mean_response() / f.mean_response())),
        ]);
    }
    t2.emit("ablation_time.csv");
}

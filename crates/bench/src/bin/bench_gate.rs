//! Bench regression gate: compare a fresh `BENCH_*.json` snapshot
//! (see `ResultTable::to_json`) against a blessed baseline checked
//! into `results/`, failing loudly when a tracked metric regresses
//! beyond tolerance.
//!
//! Rows are matched by the `--key` identity columns (default
//! `shards,strategy`, the cell coordinates of `shard_scaling`; other
//! columns are run-dependent measurements and are ignored); a current
//! value below `baseline × (1 − tolerance)` fails the gate.
//! Improvements always pass — bless them when you want a tighter
//! floor.
//!
//! ```text
//! bench_gate check --baseline results/BENCH_baseline_shard_scaling.json \
//!                  --current BENCH_shard_scaling.json \
//!                  --metric throughput/s [--tolerance 0.20]
//! bench_gate scaling --current BENCH_shard_scaling.json \
//!                  [--base-shards 1] [--target-shards 4] [--min-ratio 2.5]
//! bench_gate delta --current BENCH_delta_speedup.json [--min-ratio 3.0]
//! bench_gate bless --baseline results/BENCH_baseline_shard_scaling.json \
//!                  --current BENCH_shard_scaling.json
//! ```
//!
//! `check` exits 0 (all within tolerance) or 1 (regression / missing
//! row / unreadable snapshot). `scaling` is the scaling-*efficiency*
//! row: within one snapshot, every strategy's throughput at
//! `--target-shards` must be at least `--min-ratio ×` its throughput
//! at `--base-shards` — so "N shards ≈ 1 shard" fails CI even when no
//! per-cell number regressed. `delta` is the incremental-recomputation
//! row over a `delta_speedup` snapshot: the `mode=warm` goodput must
//! be at least `--min-ratio ×` (default 3) the `mode=cold` goodput, so
//! a delta path that quietly recomputes everything fails CI even if
//! absolute throughput held. `bless` copies the current snapshot
//! over the baseline — run it locally and commit the refreshed file
//! when a slowdown (or a benchmark change) is intentional.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    command: String,
    baseline: Option<PathBuf>,
    current: PathBuf,
    metric: String,
    key: Vec<String>,
    tolerance: f64,
    base_shards: String,
    target_shards: String,
    min_ratio: f64,
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| usage("missing command"));
    let mut baseline = None;
    let mut current = None;
    let mut metric = "throughput/s".to_string();
    let mut key = "shards,strategy".to_string();
    let mut tolerance = 0.20;
    let mut base_shards = "1".to_string();
    let mut target_shards = "4".to_string();
    let mut min_ratio = 2.5;
    while let Some(flag) = argv.next() {
        let mut value = || {
            argv.next()
                .unwrap_or_else(|| usage(&format!("flag {flag} needs a value")))
        };
        match flag.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value())),
            "--current" => current = Some(PathBuf::from(value())),
            "--metric" => metric = value(),
            "--key" => key = value(),
            "--tolerance" => {
                tolerance = value()
                    .parse()
                    .unwrap_or_else(|_| usage("--tolerance needs a float"))
            }
            "--base-shards" => base_shards = value(),
            "--target-shards" => target_shards = value(),
            "--min-ratio" => {
                min_ratio = value()
                    .parse()
                    .unwrap_or_else(|_| usage("--min-ratio needs a float"))
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    Args {
        command,
        baseline,
        current: current.unwrap_or_else(|| usage("--current is required")),
        metric,
        key: key.split(',').map(|k| k.trim().to_string()).collect(),
        tolerance,
        base_shards,
        target_shards,
        min_ratio,
    }
}

fn usage(err: &str) -> ! {
    eprintln!("bench_gate: {err}");
    eprintln!(
        "usage: bench_gate check --baseline PATH --current PATH \
         [--metric NAME] [--key COL,COL] [--tolerance FRACTION]\n       \
         bench_gate scaling --current PATH [--metric NAME] \
         [--base-shards N] [--target-shards N] [--min-ratio FLOAT]\n       \
         bench_gate delta --current PATH [--metric NAME] [--min-ratio FLOAT]\n       \
         bench_gate bless --baseline PATH --current PATH"
    );
    std::process::exit(2);
}

/// snapshot rows → map from row key (the identity columns, in the
/// order given) to the metric value.
fn load_rows(path: &Path, metric: &str, key: &[String]) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = serde::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let rows = doc
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "rows"))
        .and_then(|(_, v)| v.as_seq())
        .ok_or_else(|| format!("{}: no \"rows\" array", path.display()))?;
    let mut out = BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        let cells = row
            .as_map()
            .ok_or_else(|| format!("{}: row {i} is not an object", path.display()))?;
        let cell = |col: &str| {
            cells
                .iter()
                .find(|(k, _)| k == col)
                .and_then(|(_, v)| v.as_str())
                .ok_or_else(|| format!("{}: row {i} has no {col:?} column", path.display()))
        };
        let key_parts: Vec<String> = key
            .iter()
            .map(|col| Ok(format!("{col}={}", cell(col)?)))
            .collect::<Result<_, String>>()?;
        let raw = cell(metric)?;
        let value = raw.parse::<f64>().map_err(|_| {
            format!(
                "{}: row {i} metric {metric:?} = {raw:?} not numeric",
                path.display()
            )
        })?;
        if out.insert(key_parts.join(" "), value).is_some() {
            return Err(format!(
                "{}: duplicate row key [{}] — pass --key with the full cell coordinates",
                path.display(),
                key_parts.join(" ")
            ));
        }
    }
    Ok(out)
}

fn require_baseline(args: &Args) -> Result<&Path, String> {
    args.baseline
        .as_deref()
        .ok_or_else(|| format!("bench_gate: {} requires --baseline", args.command))
}

fn check(args: &Args) -> Result<(), String> {
    let baseline = load_rows(require_baseline(args)?, &args.metric, &args.key)?;
    let current = load_rows(&args.current, &args.metric, &args.key)?;
    let mut failures = Vec::new();
    println!(
        "bench_gate: {} vs blessed {} ({} rows, metric {:?}, tolerance {:.0}%)",
        args.current.display(),
        require_baseline(args)?.display(),
        baseline.len(),
        args.metric,
        args.tolerance * 100.0
    );
    for (key, &blessed) in &baseline {
        match current.get(key) {
            None => failures.push(format!("row [{key}] missing from current snapshot")),
            Some(&now) => {
                let floor = blessed * (1.0 - args.tolerance);
                let delta = if blessed.abs() > f64::EPSILON {
                    100.0 * (now - blessed) / blessed
                } else {
                    0.0
                };
                let verdict = if now < floor { "REGRESSED" } else { "ok" };
                println!(
                    "  [{key}] blessed {blessed:.1} -> current {now:.1} ({delta:+.1}%) {verdict}"
                );
                if now < floor {
                    failures.push(format!(
                        "[{key}] {metric} regressed {delta:.1}%: {now:.1} < floor {floor:.1} \
                         (blessed {blessed:.1}, tolerance {tol:.0}%)",
                        metric = args.metric,
                        tol = args.tolerance * 100.0,
                    ));
                }
            }
        }
    }
    if failures.is_empty() {
        println!("bench_gate: PASS");
        Ok(())
    } else {
        let mut msg = String::from("bench_gate: FAIL\n");
        for f in &failures {
            msg.push_str("  ");
            msg.push_str(f);
            msg.push('\n');
        }
        msg.push_str(
            "if the change is intentional, refresh the baseline:\n  \
             cargo run --release -p dflow-bench --bin shard_scaling -- --smoke --json current.json\n  \
             cargo run --release -p dflow-bench --bin bench_gate -- bless \
             --baseline results/BENCH_baseline_shard_scaling.json --current current.json\n\
             and commit the refreshed baseline.",
        );
        Err(msg)
    }
}

/// The scaling-efficiency gate: within one snapshot, every strategy
/// must deliver at least `min_ratio ×` its `base_shards` throughput
/// at `target_shards`. This is what catches "N shards ≈ 1 shard" —
/// a flat curve where every individual cell still beats its blessed
/// floor.
fn scaling(args: &Args) -> Result<(), String> {
    let rows = load_rows(&args.current, &args.metric, &args.key)?;
    // Keys look like "shards=N strategy=S" (the default --key); index
    // the metric by (shards, strategy).
    let mut by_cell: BTreeMap<(String, String), f64> = BTreeMap::new();
    for (key, &value) in &rows {
        let mut shards = None;
        let mut strategy = None;
        for part in key.split_whitespace() {
            if let Some(v) = part.strip_prefix("shards=") {
                shards = Some(v.to_string());
            } else if let Some(v) = part.strip_prefix("strategy=") {
                strategy = Some(v.to_string());
            }
        }
        let (Some(sh), Some(st)) = (shards, strategy) else {
            return Err(format!(
                "bench_gate scaling: row [{key}] lacks shards=/strategy= coordinates \
                 (pass --key shards,strategy)"
            ));
        };
        by_cell.insert((sh, st), value);
    }
    println!(
        "bench_gate: scaling efficiency of {} ({} shards must be ≥ {:.2}× {} shards, metric {:?})",
        args.current.display(),
        args.target_shards,
        args.min_ratio,
        args.base_shards,
        args.metric,
    );
    let mut failures = Vec::new();
    let mut compared = 0usize;
    let strategies: Vec<String> = by_cell
        .keys()
        .filter(|(sh, _)| *sh == args.base_shards)
        .map(|(_, st)| st.clone())
        .collect();
    for st in &strategies {
        let base = by_cell[&(args.base_shards.clone(), st.clone())];
        let Some(&target) = by_cell.get(&(args.target_shards.clone(), st.clone())) else {
            failures.push(format!(
                "strategy {st}: no row at shards={}",
                args.target_shards
            ));
            continue;
        };
        compared += 1;
        let ratio = if base.abs() > f64::EPSILON {
            target / base
        } else {
            0.0
        };
        let verdict = if ratio < args.min_ratio { "FLAT" } else { "ok" };
        println!(
            "  [{st}] {base:.1} @ {bs} shards -> {target:.1} @ {ts} shards = {ratio:.2}x {verdict}",
            bs = args.base_shards,
            ts = args.target_shards,
        );
        if ratio < args.min_ratio {
            failures.push(format!(
                "strategy {st}: {ts}-shard throughput is only {ratio:.2}× the \
                 {bs}-shard figure (required ≥ {min:.2}×)",
                ts = args.target_shards,
                bs = args.base_shards,
                min = args.min_ratio,
            ));
        }
    }
    if compared == 0 {
        failures.push(format!(
            "no strategy has rows at both shards={} and shards={}",
            args.base_shards, args.target_shards
        ));
    }
    if failures.is_empty() {
        println!("bench_gate: PASS (scaling)");
        Ok(())
    } else {
        let mut msg = String::from("bench_gate: FAIL (scaling)\n");
        for f in &failures {
            msg.push_str("  ");
            msg.push_str(f);
            msg.push('\n');
        }
        msg.push_str(
            "shard scaling collapsed: profile the submit → route → queue → execute → \
             complete pipeline before touching the gate threshold.",
        );
        Err(msg)
    }
}

/// The incremental-recomputation gate: in a `delta_speedup` snapshot
/// (rows keyed by `mode`), warm resubmission goodput must beat cold
/// full recomputation by `min_ratio ×`. A delta path that silently
/// re-executes the whole flow still *completes* everything — only this
/// ratio catches it.
fn delta(args: &Args) -> Result<(), String> {
    let key = vec!["mode".to_string()];
    let rows = load_rows(&args.current, &args.metric, &key)?;
    let need = |mode: &str| {
        rows.get(&format!("mode={mode}")).copied().ok_or_else(|| {
            format!(
                "bench_gate delta: {} has no mode={mode} row",
                args.current.display()
            )
        })
    };
    let cold = need("cold")?;
    let warm = need("warm")?;
    let ratio = if cold.abs() > f64::EPSILON {
        warm / cold
    } else {
        0.0
    };
    println!(
        "bench_gate: delta speedup of {} (warm must be ≥ {:.2}× cold, metric {:?})",
        args.current.display(),
        args.min_ratio,
        args.metric,
    );
    let verdict = if ratio < args.min_ratio {
        "RECOMPUTING"
    } else {
        "ok"
    };
    println!("  cold {cold:.1} -> warm {warm:.1} = {ratio:.2}x {verdict}");
    if ratio < args.min_ratio {
        Err(format!(
            "bench_gate: FAIL (delta)\n  warm goodput is only {ratio:.2}× cold \
             (required ≥ {:.2}×)\nthe delta path is re-executing retained work: check \
             plan_delta cone computation and snapshot commits before touching the threshold.",
            args.min_ratio,
        ))
    } else {
        println!("bench_gate: PASS (delta)");
        Ok(())
    }
}

fn bless(args: &Args) -> Result<(), String> {
    // Validate the current snapshot parses before blessing it.
    let baseline = require_baseline(args)?;
    let rows = load_rows(&args.current, &args.metric, &args.key)?;
    let diff: Vec<String> = match load_rows(baseline, &args.metric, &args.key) {
        Ok(old) => rows
            .iter()
            .map(|(k, v)| match old.get(k) {
                Some(o) => format!("  [{k}] {o:.1} -> {v:.1}"),
                None => format!("  [{k}] (new) -> {v:.1}"),
            })
            .collect(),
        Err(_) => rows
            .iter()
            .map(|(k, v)| format!("  [{k}] -> {v:.1}"))
            .collect(),
    };
    std::fs::copy(&args.current, baseline)
        .map_err(|e| format!("cannot bless {}: {e}", baseline.display()))?;
    println!(
        "bench_gate: blessed {} <- {} ({} rows)",
        baseline.display(),
        args.current.display(),
        rows.len()
    );
    for line in diff {
        println!("{line}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let result = match args.command.as_str() {
        "check" => check(&args),
        "scaling" => scaling(&args),
        "delta" => delta(&args),
        "bless" => bless(&args),
        other => usage(&format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

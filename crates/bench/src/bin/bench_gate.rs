//! Bench regression gate: compare a fresh `BENCH_*.json` snapshot
//! (see `ResultTable::to_json`) against a blessed baseline checked
//! into `results/`, failing loudly when a tracked metric regresses
//! beyond tolerance.
//!
//! Rows are matched by the `--key` identity columns (default
//! `shards,strategy`, the cell coordinates of `shard_scaling`; other
//! columns are run-dependent measurements and are ignored); a current
//! value below `baseline × (1 − tolerance)` fails the gate.
//! Improvements always pass — bless them when you want a tighter
//! floor.
//!
//! ```text
//! bench_gate check --baseline results/BENCH_baseline_shard_scaling.json \
//!                  --current BENCH_shard_scaling.json \
//!                  --metric throughput/s [--tolerance 0.20]
//! bench_gate bless --baseline results/BENCH_baseline_shard_scaling.json \
//!                  --current BENCH_shard_scaling.json
//! ```
//!
//! `check` exits 0 (all within tolerance) or 1 (regression / missing
//! row / unreadable snapshot). `bless` copies the current snapshot
//! over the baseline — run it locally and commit the refreshed file
//! when a slowdown (or a benchmark change) is intentional.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    command: String,
    baseline: PathBuf,
    current: PathBuf,
    metric: String,
    key: Vec<String>,
    tolerance: f64,
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| usage("missing command"));
    let mut baseline = None;
    let mut current = None;
    let mut metric = "throughput/s".to_string();
    let mut key = "shards,strategy".to_string();
    let mut tolerance = 0.20;
    while let Some(flag) = argv.next() {
        let mut value = || {
            argv.next()
                .unwrap_or_else(|| usage(&format!("flag {flag} needs a value")))
        };
        match flag.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value())),
            "--current" => current = Some(PathBuf::from(value())),
            "--metric" => metric = value(),
            "--key" => key = value(),
            "--tolerance" => {
                tolerance = value()
                    .parse()
                    .unwrap_or_else(|_| usage("--tolerance needs a float"))
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    Args {
        command,
        baseline: baseline.unwrap_or_else(|| usage("--baseline is required")),
        current: current.unwrap_or_else(|| usage("--current is required")),
        metric,
        key: key.split(',').map(|k| k.trim().to_string()).collect(),
        tolerance,
    }
}

fn usage(err: &str) -> ! {
    eprintln!("bench_gate: {err}");
    eprintln!(
        "usage: bench_gate check --baseline PATH --current PATH \
         [--metric NAME] [--key COL,COL] [--tolerance FRACTION]\n       \
         bench_gate bless --baseline PATH --current PATH"
    );
    std::process::exit(2);
}

/// snapshot rows → map from row key (the identity columns, in the
/// order given) to the metric value.
fn load_rows(path: &Path, metric: &str, key: &[String]) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = serde::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let rows = doc
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "rows"))
        .and_then(|(_, v)| v.as_seq())
        .ok_or_else(|| format!("{}: no \"rows\" array", path.display()))?;
    let mut out = BTreeMap::new();
    for (i, row) in rows.iter().enumerate() {
        let cells = row
            .as_map()
            .ok_or_else(|| format!("{}: row {i} is not an object", path.display()))?;
        let cell = |col: &str| {
            cells
                .iter()
                .find(|(k, _)| k == col)
                .and_then(|(_, v)| v.as_str())
                .ok_or_else(|| format!("{}: row {i} has no {col:?} column", path.display()))
        };
        let key_parts: Vec<String> = key
            .iter()
            .map(|col| Ok(format!("{col}={}", cell(col)?)))
            .collect::<Result<_, String>>()?;
        let raw = cell(metric)?;
        let value = raw.parse::<f64>().map_err(|_| {
            format!(
                "{}: row {i} metric {metric:?} = {raw:?} not numeric",
                path.display()
            )
        })?;
        if out.insert(key_parts.join(" "), value).is_some() {
            return Err(format!(
                "{}: duplicate row key [{}] — pass --key with the full cell coordinates",
                path.display(),
                key_parts.join(" ")
            ));
        }
    }
    Ok(out)
}

fn check(args: &Args) -> Result<(), String> {
    let baseline = load_rows(&args.baseline, &args.metric, &args.key)?;
    let current = load_rows(&args.current, &args.metric, &args.key)?;
    let mut failures = Vec::new();
    println!(
        "bench_gate: {} vs blessed {} ({} rows, metric {:?}, tolerance {:.0}%)",
        args.current.display(),
        args.baseline.display(),
        baseline.len(),
        args.metric,
        args.tolerance * 100.0
    );
    for (key, &blessed) in &baseline {
        match current.get(key) {
            None => failures.push(format!("row [{key}] missing from current snapshot")),
            Some(&now) => {
                let floor = blessed * (1.0 - args.tolerance);
                let delta = if blessed.abs() > f64::EPSILON {
                    100.0 * (now - blessed) / blessed
                } else {
                    0.0
                };
                let verdict = if now < floor { "REGRESSED" } else { "ok" };
                println!(
                    "  [{key}] blessed {blessed:.1} -> current {now:.1} ({delta:+.1}%) {verdict}"
                );
                if now < floor {
                    failures.push(format!(
                        "[{key}] {metric} regressed {delta:.1}%: {now:.1} < floor {floor:.1} \
                         (blessed {blessed:.1}, tolerance {tol:.0}%)",
                        metric = args.metric,
                        tol = args.tolerance * 100.0,
                    ));
                }
            }
        }
    }
    if failures.is_empty() {
        println!("bench_gate: PASS");
        Ok(())
    } else {
        let mut msg = String::from("bench_gate: FAIL\n");
        for f in &failures {
            msg.push_str("  ");
            msg.push_str(f);
            msg.push('\n');
        }
        msg.push_str(
            "if the change is intentional, refresh the baseline:\n  \
             cargo run --release -p dflow-bench --bin shard_scaling -- --smoke --json current.json\n  \
             cargo run --release -p dflow-bench --bin bench_gate -- bless \
             --baseline results/BENCH_baseline_shard_scaling.json --current current.json\n\
             and commit the refreshed baseline.",
        );
        Err(msg)
    }
}

fn bless(args: &Args) -> Result<(), String> {
    // Validate the current snapshot parses before blessing it.
    let rows = load_rows(&args.current, &args.metric, &args.key)?;
    let diff: Vec<String> = match load_rows(&args.baseline, &args.metric, &args.key) {
        Ok(old) => rows
            .iter()
            .map(|(k, v)| match old.get(k) {
                Some(o) => format!("  [{k}] {o:.1} -> {v:.1}"),
                None => format!("  [{k}] (new) -> {v:.1}"),
            })
            .collect(),
        Err(_) => rows
            .iter()
            .map(|(k, v)| format!("  [{k}] -> {v:.1}"))
            .collect(),
    };
    std::fs::copy(&args.current, &args.baseline)
        .map_err(|e| format!("cannot bless {}: {e}", args.baseline.display()))?;
    println!(
        "bench_gate: blessed {} <- {} ({} rows)",
        args.baseline.display(),
        args.current.display(),
        rows.len()
    );
    for line in diff {
        println!("{line}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    let result = match args.command.as_str() {
        "check" => check(&args),
        "bless" => bless(&args),
        other => usage(&format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

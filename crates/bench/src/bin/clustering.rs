//! Extension experiment: query clustering across overlapping decision
//! flows (the paper's concluding open question — "how to optimize when
//! several decision flows will be executed based on overlapping data,
//! whether queries ... should be clustered to reduce overall database
//! access time").
//!
//! Setup: 200 instances arrive at a fixed rate; an *overlap fraction*
//! of them are repeat contacts (identical source data to an earlier
//! instance — think of the same web customer generating another page),
//! realized by drawing instances from a pool of distinct flow
//! replicas. A shared query-result cache answers repeated (attribute,
//! inputs) pairs without a database round-trip, so repeats cost the
//! database nothing and fresh contacts see a lighter Gmpl.

use dflow_bench::harness::{f1, ResultTable};
use dflowgen::{generate, PatternParams};
use dflowperf::{Arrival, SimDb, Workload};
use simdb::DbConfig;

fn main() {
    let params = PatternParams {
        nb_rows: 4,
        pct_enabled: 75,
        ..Default::default()
    };
    let strategy = "PCE100".parse().unwrap();
    let th = 2.5; // near the knee for this pattern (see fig9b)
    let total = 200usize;

    let mut t = ResultTable::new(
        "Query clustering — shared result cache under varying data overlap (Th=2.5/s)",
        &[
            "overlap%",
            "resp off(ms)",
            "resp on(ms)",
            "Gmpl off",
            "Gmpl on",
            "hits",
        ],
    );
    for overlap_pct in [0usize, 25, 50, 75] {
        // distinct replicas so that `overlap_pct` of instances repeat
        // earlier source data (round-robin assignment).
        let distinct = (total * (100 - overlap_pct) / 100).max(1);
        let flows: Vec<_> = (0..distinct as u64)
            .map(|i| generate(params, 0xC100 + i).expect("valid pattern"))
            .collect();
        let base = Workload::new(flows)
            .arrivals(Arrival::Poisson { rate: th })
            .instances(total)
            .warmup(40)
            .seed(0xC1)
            .strategy(strategy);
        let off = base.clone().run(&SimDb::default()).expect("valid workload");
        let on = base
            .run(&SimDb {
                db: DbConfig::default(),
                shared_query_cache: true,
            })
            .expect("valid workload");
        let (off_sim, on_sim) = (off.sim.expect("simdb stats"), on.sim.expect("simdb stats"));
        t.row(vec![
            overlap_pct.to_string(),
            f1(off.responses.mean()),
            f1(on.responses.mean()),
            f1(off_sim.mean_gmpl),
            f1(on_sim.mean_gmpl),
            on_sim.cache_hits.to_string(),
        ]);
    }
    t.emit("clustering.csv");
    println!("repeat contacts are served from the cache (free), and fresh");
    println!("contacts benefit from the unloaded database as overlap grows.");
}

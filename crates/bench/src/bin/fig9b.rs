//! Figure 9(b): accuracy of the analytic model for finite database
//! resources — plus the open-load saturation curve against the *real*
//! sharded server.
//!
//! Full mode reproduces the four graphs of the figure for
//! `nb_rows = 4`, `%enabled = 75` at a throughput of `Th = 10`
//! instances/second:
//!
//! * graph (a): `UnitTime(Work)` from Equation (6) over the measured
//!   `Db` function;
//! * graph (b): the guideline map `minT(Work)` with its programs;
//! * graph (c): predicted response time `minT(W) × UnitTime(W)`;
//! * graph (d): measured response time of each frontier program under
//!   Poisson arrivals against the simulated database (the `SimDb`
//!   backend of the unified `Workload` API).
//!
//! The paper reports the prediction within ~10% of the measurement and
//! `PC*100%` as the optimal program at this operating point.
//!
//! Both modes then run **graph (e)**: `Arrival::Poisson` against the
//! real sharded `EngineServer` (`Server` backend), with task costs
//! mapped onto wall-clock time (`GeneratedFlow::with_unit_delay`) so
//! worker threads become the finite resource. Offered load sweeps past
//! capacity; achieved throughput rises monotonically, then saturates,
//! and instances blowing the per-request `Request::deadline` budget
//! are tallied as late drops.
//!
//! Flags:
//!
//! * `--smoke` — skip the expensive full-figure sweeps and run only a
//!   reduced graph (e), sized for CI (the `open-load-smoke` job);
//! * `--json PATH` — additionally emit the graph (e) table as a
//!   `BENCH_*.json` snapshot for the CI job summary.

use std::path::PathBuf;
use std::time::Duration;

use dflow_bench::harness::{f1, ResultTable};
use dflowgen::{generate, GeneratedFlow, PatternParams};
use dflowperf::{
    guideline_for_pattern, max_work_for_throughput, portfolio, solve_unit_time,
    solve_unit_time_with_lmpl, Arrival, DbFunction, Server, SimDb, Workload,
};
use simdb::{measure_db_function, measure_db_function_open, DbConfig};

struct Args {
    smoke: bool,
    json: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut smoke = false;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                json = Some(PathBuf::from(
                    args.next().expect("--json needs a file path"),
                ))
            }
            other => panic!("unknown flag {other:?} (expected --smoke / --json PATH)"),
        }
    }
    Args { smoke, json }
}

fn main() {
    let args = parse_args();
    if !args.smoke {
        full_figure();
    }
    open_load_vs_real_server(&args);
}

/// Graphs (a)–(d): the paper's figure against the simulated database.
fn full_figure() {
    let db_cfg = DbConfig::default();
    let params = PatternParams {
        nb_rows: 4,
        pct_enabled: 75,
        ..Default::default()
    };

    eprintln!("measuring Db function (closed-loop, Figure 9(a)) ...");
    let db_closed =
        DbFunction::from_points(&measure_db_function(db_cfg, (1..=40).step_by(2), 0x9B));
    eprintln!("calibrating Db function (open Poisson unit load) ...");
    // Open calibration captures the queueing fluctuations an open
    // decision-flow workload experiences; the closed-loop curve
    // understates them (documented in EXPERIMENTS.md).
    let rates: Vec<f64> = (1..=13).map(|i| i as f64 * 30.0).collect();
    let db = DbFunction::from_points(&measure_db_function_open(db_cfg, rates, 0x9B));
    let _ = &db_closed;

    // First application of Equation (6): the work bound per throughput.
    // (The paper: "using the function Db of Figure 9(a) and a given
    // throughput, this upper bound on Work can be used ... to determine
    // whether a given throughput can be supported at all".)
    println!("Equation (6) work bounds (units/instance):");
    for th in [1.0, 2.0, 2.5, 5.0, 10.0, 20.0] {
        println!(
            "  Th={th:>4}/s  max Work = {}",
            max_work_for_throughput(&db, th, 100_000)
        );
    }

    eprintln!("building guideline map (unit-time sweeps)...");
    let map = guideline_for_pattern(params, &portfolio(&[40, 80, 100]), 15, 0xF1_69B1);

    // Pick the highest throughput (from a coarse grid) that can support
    // every frontier program of this pattern, with 15% headroom so the
    // open-loop measurement sits in steady state.
    let max_work = map.frontier().iter().map(|p| p.work).fold(0.0f64, f64::max);
    let th = [10.0, 8.0, 6.0, 5.0, 4.0, 3.0, 2.5, 2.0, 1.5, 1.0]
        .into_iter()
        .find(|&th| max_work_for_throughput(&db, th, 100_000) as f64 >= max_work * 1.15)
        .expect("some throughput in the grid is feasible");
    println!("\npattern needs up to {max_work:.0} units/instance -> operating at Th={th}/s\n");

    let flows: Vec<_> = (0..8)
        .map(|i| generate(params, 0xF1_69B1 + i).expect("valid pattern"))
        .collect();

    let mut t = ResultTable::new(
        format!(
            "Figure 9(b) — predicted vs measured response time (Th={th}/s, nb_rows=4, %enabled=75)"
        ),
        &[
            "program",
            "Work",
            "minT(units)",
            "UnitTime(ms)",
            "predicted(ms)",
            "pred+Lmpl(ms)",
            "measured(ms)",
            "err%",
            "errL%",
            "mUnit(ms)",
            "mGmpl",
        ],
    );
    let mut best: Option<(String, f64)> = None;
    for p in map.frontier() {
        let unit = solve_unit_time(&db, th, p.work).stable_ms();
        let predicted = unit.map(|u| u * p.time_units);
        // Burstiness-corrected prediction (Lmpl = Work / TimeInUnits).
        let lmpl = (p.work / p.time_units).max(1.0);
        let predicted_l = solve_unit_time_with_lmpl(&db, th, p.work, lmpl)
            .stable_ms()
            .map(|u| u * p.time_units);
        let measured = Workload::new(flows.clone())
            .arrivals(Arrival::Poisson { rate: th })
            .instances(400)
            .warmup(80)
            .seed(0x9B)
            .strategy(p.strategy)
            .run(&SimDb::new(db_cfg))
            .expect("valid workload");
        let sim = measured.sim.expect("simdb stats");
        let m = measured.responses.mean();
        let (pred_s, err_s) = match predicted {
            Some(pr) => (f1(pr), f1(100.0 * (pr - m).abs() / m)),
            None => ("saturated".to_string(), "-".to_string()),
        };
        let (pred_l_s, err_l_s) = match predicted_l {
            Some(pr) => (f1(pr), f1(100.0 * (pr - m).abs() / m)),
            None => ("saturated".to_string(), "-".to_string()),
        };
        t.row(vec![
            p.strategy.to_string(),
            f1(p.work),
            f1(p.time_units),
            unit.map(f1).unwrap_or_else(|| "-".into()),
            pred_s,
            pred_l_s,
            f1(m),
            err_s,
            err_l_s,
            f1(sim.mean_unit_time_ms),
            f1(sim.mean_gmpl),
        ]);
        match &best {
            Some((_, bm)) if *bm <= m => {}
            _ => best = Some((p.strategy.to_string(), m)),
        }
    }
    t.emit("fig9b.csv");
    if let Some((s, m)) = best {
        println!("optimal measured program: {s} at {:.0} ms", m);
    }
}

/// Graph (e): the same open-arrival workload shape against the real
/// sharded server, sweeping offered load past capacity.
fn open_load_vs_real_server(args: &Args) {
    let params = PatternParams {
        nb_nodes: 16,
        nb_rows: 4,
        pct_enabled: 75,
        ..Default::default()
    };
    // Map one unit of processing to real time so the worker pool is a
    // finite resource; a 300ms budget marks stragglers as late drops.
    let per_unit = Duration::from_micros(500);
    let deadline = Duration::from_millis(300);
    let flows: Vec<GeneratedFlow> = (0..3)
        .map(|i| {
            generate(params, 0x0E9B + i)
                .expect("valid pattern")
                .with_unit_delay(per_unit)
        })
        .collect();
    let (shards, workers) = (1usize, 2usize);
    let (rates, total, warmup) = if args.smoke {
        (vec![30.0, 60.0, 120.0, 240.0], 96usize, 16usize)
    } else {
        (
            vec![15.0, 30.0, 60.0, 120.0, 240.0, 480.0],
            240usize,
            40usize,
        )
    };

    let mode = if args.smoke { " (smoke)" } else { "" };
    eprintln!("open-load saturation vs the real server{mode} ...");
    let mut t = ResultTable::new(
        format!(
            "Fig 9(b) graph (e){mode} — Poisson arrivals vs real EngineServer \
             ({shards}x{workers} workers, {}us/unit, {}ms deadline)",
            per_unit.as_micros(),
            deadline.as_millis()
        ),
        &[
            "offered/s",
            "achieved/s",
            "goodput/s",
            "mean_ms",
            "p50_ms",
            "p99_ms",
            "completed",
            "late",
            "abandoned",
        ],
    );
    let mut achieved = Vec::new();
    for &rate in &rates {
        let r = Workload::new(flows.clone())
            .arrivals(Arrival::Poisson { rate })
            .instances(total)
            .warmup(warmup)
            .seed(0x9B)
            .deadline(deadline)
            .strategy("PCE100".parse().unwrap())
            .run(&Server {
                shards,
                workers_per_shard: workers,
                ..Server::default()
            })
            .expect("server build");
        assert!(
            r.accounts_exactly(),
            "submitted = completed + late + abandoned must hold"
        );
        achieved.push(r.completion_throughput_per_sec);
        t.row(vec![
            f1(rate),
            f1(r.completion_throughput_per_sec),
            f1(r.throughput_per_sec),
            f1(r.responses.mean()),
            f1(r.percentiles.p50),
            f1(r.percentiles.p99),
            r.completed.to_string(),
            r.late_dropped.to_string(),
            r.abandoned.to_string(),
        ]);
    }
    t.emit("fig9b_server.csv");
    if let Some(path) = &args.json {
        t.emit_json(path);
    }

    // The curve must rise with offered load and then saturate: the
    // last doubling of offered load cannot double achieved throughput.
    let first = achieved.first().copied().unwrap_or(0.0);
    let last = achieved.last().copied().unwrap_or(0.0);
    let peak = achieved.iter().copied().fold(0.0f64, f64::max);
    assert!(first > 0.0 && last > 0.0, "throughput must be positive");
    assert!(
        peak > first,
        "raising offered load must raise achieved throughput ({achieved:?})"
    );
    assert!(
        last < rates.last().unwrap() * 0.9,
        "offered {} >> capacity: achieved {last:.1}/s must saturate below it ({achieved:?})",
        rates.last().unwrap()
    );
    println!(
        "\nachieved throughput rises {first:.1}/s -> {peak:.1}/s, then saturates \
         (last offered {:.0}/s achieved {last:.1}/s)",
        rates.last().unwrap()
    );
}

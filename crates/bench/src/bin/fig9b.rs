//! Figure 9(b): accuracy of the analytic model for finite database
//! resources.
//!
//! Reproduces the four graphs of the figure for `nb_rows = 4`,
//! `%enabled = 75` at a throughput of `Th = 10` instances/second:
//!
//! * graph (a): `UnitTime(Work)` from Equation (6) over the measured
//!   `Db` function;
//! * graph (b): the guideline map `minT(Work)` with its programs;
//! * graph (c): predicted response time `minT(W) × UnitTime(W)`;
//! * graph (d): measured response time of each frontier program under
//!   Poisson arrivals against the simulated database.
//!
//! The paper reports the prediction within ~10% of the measurement and
//! `PC*100%` as the optimal program at this operating point.

use dflow_bench::harness::{f1, ResultTable};
use dflowgen::{generate, PatternParams};
use dflowperf::{
    guideline_for_pattern, max_work_for_throughput, portfolio, run_open_load, solve_unit_time,
    solve_unit_time_with_lmpl, DbFunction, LoadConfig,
};
use simdb::{measure_db_function, measure_db_function_open, DbConfig};

fn main() {
    let db_cfg = DbConfig::default();
    let params = PatternParams {
        nb_rows: 4,
        pct_enabled: 75,
        ..Default::default()
    };

    eprintln!("measuring Db function (closed-loop, Figure 9(a)) ...");
    let db_closed =
        DbFunction::from_points(&measure_db_function(db_cfg, (1..=40).step_by(2), 0x9B));
    eprintln!("calibrating Db function (open Poisson unit load) ...");
    // Open calibration captures the queueing fluctuations an open
    // decision-flow workload experiences; the closed-loop curve
    // understates them (documented in EXPERIMENTS.md).
    let rates: Vec<f64> = (1..=13).map(|i| i as f64 * 30.0).collect();
    let db = DbFunction::from_points(&measure_db_function_open(db_cfg, rates, 0x9B));
    let _ = &db_closed;

    // First application of Equation (6): the work bound per throughput.
    // (The paper: "using the function Db of Figure 9(a) and a given
    // throughput, this upper bound on Work can be used ... to determine
    // whether a given throughput can be supported at all".)
    println!("Equation (6) work bounds (units/instance):");
    for th in [1.0, 2.0, 2.5, 5.0, 10.0, 20.0] {
        println!(
            "  Th={th:>4}/s  max Work = {}",
            max_work_for_throughput(&db, th, 100_000)
        );
    }

    eprintln!("building guideline map (unit-time sweeps)...");
    let map = guideline_for_pattern(params, &portfolio(&[40, 80, 100]), 15, 0xF1_69B1);

    // Pick the highest throughput (from a coarse grid) that can support
    // every frontier program of this pattern, with 15% headroom so the
    // open-loop measurement sits in steady state.
    let max_work = map.frontier().iter().map(|p| p.work).fold(0.0f64, f64::max);
    let th = [10.0, 8.0, 6.0, 5.0, 4.0, 3.0, 2.5, 2.0, 1.5, 1.0]
        .into_iter()
        .find(|&th| max_work_for_throughput(&db, th, 100_000) as f64 >= max_work * 1.15)
        .expect("some throughput in the grid is feasible");
    println!("\npattern needs up to {max_work:.0} units/instance -> operating at Th={th}/s\n");

    let flows: Vec<_> = (0..8)
        .map(|i| generate(params, 0xF1_69B1 + i).expect("valid pattern"))
        .collect();

    let mut t = ResultTable::new(
        format!(
            "Figure 9(b) — predicted vs measured response time (Th={th}/s, nb_rows=4, %enabled=75)"
        ),
        &[
            "program",
            "Work",
            "minT(units)",
            "UnitTime(ms)",
            "predicted(ms)",
            "pred+Lmpl(ms)",
            "measured(ms)",
            "err%",
            "errL%",
            "mUnit(ms)",
            "mGmpl",
        ],
    );
    let mut best: Option<(String, f64)> = None;
    for p in map.frontier() {
        let unit = solve_unit_time(&db, th, p.work).stable_ms();
        let predicted = unit.map(|u| u * p.time_units);
        // Burstiness-corrected prediction (Lmpl = Work / TimeInUnits).
        let lmpl = (p.work / p.time_units).max(1.0);
        let predicted_l = solve_unit_time_with_lmpl(&db, th, p.work, lmpl)
            .stable_ms()
            .map(|u| u * p.time_units);
        let measured = run_open_load(
            &flows,
            p.strategy,
            db_cfg,
            LoadConfig {
                arrival_rate_per_sec: th,
                total_instances: 400,
                warmup_instances: 80,
                seed: 0x9B,
                shared_query_cache: false,
            },
        );
        let m = measured.responses_ms.mean();
        let (pred_s, err_s) = match predicted {
            Some(pr) => (f1(pr), f1(100.0 * (pr - m).abs() / m)),
            None => ("saturated".to_string(), "-".to_string()),
        };
        let (pred_l_s, err_l_s) = match predicted_l {
            Some(pr) => (f1(pr), f1(100.0 * (pr - m).abs() / m)),
            None => ("saturated".to_string(), "-".to_string()),
        };
        t.row(vec![
            p.strategy.to_string(),
            f1(p.work),
            f1(p.time_units),
            unit.map(f1).unwrap_or_else(|| "-".into()),
            pred_s,
            pred_l_s,
            f1(m),
            err_s,
            err_l_s,
            f1(measured.mean_unit_time_ms),
            f1(measured.mean_gmpl),
        ]);
        match &best {
            Some((_, bm)) if *bm <= m => {}
            _ => best = Some((p.strategy.to_string(), m)),
        }
    }
    t.emit("fig9b.csv");
    if let Some((s, m)) = best {
        println!("optimal measured program: {s} at {:.0} ms", m);
    }
}

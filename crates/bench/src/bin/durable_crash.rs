//! `durable_crash` — SIGKILL crash/recover smoke for the durable
//! event store (the CI `durability` job).
//!
//! The process re-executes itself: the parent spawns `durable_crash
//! serve DIR` (a durable [`EngineServer`] submitting load forever),
//! lets it seal a few dozen instances, then kills it with **SIGKILL**
//! — no destructors, no flush, a real crash mid-append. The parent
//! then walks the full recovery protocol on the survivor directory:
//!
//! 1. reopen — torn tails must be warnings, never a refusal;
//! 2. `recover_pending` — re-execute every accepted-but-unsealed
//!    instance exactly once;
//! 3. `fsck` — the recovered store must carry zero error findings;
//! 4. time travel — sample sealed instances, reconstruct their
//!    journals from the WAL, and replay them through the
//!    [`ReplayEngine`].
//!
//! Any violated invariant exits `1`; `--json FILE` always writes the
//! final [`FsckReport`] (the CI failure artifact). The store directory
//! is left on disk for `dflow-store fsck`/`ls` post-mortems.
//!
//! ```text
//! durable_crash [--dir DIR] [--json FILE]
//! ```
//!
//! [`EngineServer`]: decisionflow::server::EngineServer
//! [`ReplayEngine`]: decisionflow::journal::ReplayEngine
//! [`FsckReport`]: decisionflow::store::FsckReport

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode, Stdio};
use std::sync::Arc;

use decisionflow::journal::ReplayEngine;
use decisionflow::prelude::{EngineServer, Request};
use decisionflow::store::{self, FsckReport};
use dflowgen::{generate, PatternParams};

/// Parent and child must regenerate the identical schema: recovery
/// verifies the fingerprint persisted at acceptance.
const FLOW_SEED: u64 = 20_260_808;
const SCHEMA: &str = "crash-flow";
const SHARDS: usize = 2;
const WORKERS_PER_SHARD: usize = 1;

/// Submissions the parent waits for before pulling the trigger —
/// enough load that the kill lands with instances in flight.
const SUBMISSIONS_BEFORE_KILL: usize = 48;

fn flow() -> dflowgen::GeneratedFlow {
    generate(
        PatternParams {
            nb_nodes: 24,
            nb_rows: 3,
            pct_enabled: 70,
            ..Default::default()
        },
        FLOW_SEED,
    )
    .expect("crash-flow pattern is valid")
}

fn open(dir: &Path) -> EngineServer {
    EngineServer::builder()
        .shards(SHARDS)
        .workers_per_shard(WORKERS_PER_SHARD)
        .strategy("PSE100".parse().unwrap())
        .durable(dir)
        .build()
        .unwrap_or_else(|e| {
            eprintln!(
                "durable_crash: store at {} refused to open: {e}",
                dir.display()
            );
            std::process::exit(1)
        })
}

/// Child mode: submit durable instances forever, reporting each
/// submission on stdout so the parent knows when to kill. Tickets are
/// resolved with a lag so the seal stream trails the accept stream —
/// the kill then reliably catches accepted-but-unsealed instances.
fn serve(dir: &Path) -> ! {
    let server = open(dir);
    let flow = flow();
    server.register(SCHEMA, Arc::clone(&flow.schema));
    let mut inflight = std::collections::VecDeque::new();
    let mut stdout = std::io::stdout();
    for n in 0.. {
        let ticket = server
            .submit(
                Request::named(SCHEMA)
                    .sources(flow.sources.clone())
                    .durable(true),
            )
            .expect("durable submit");
        inflight.push_back(ticket);
        if inflight.len() > 8 {
            let _ = inflight.pop_front().expect("non-empty").wait();
        }
        let _ = writeln!(stdout, "submitted {n}");
        let _ = stdout.flush();
    }
    unreachable!("submission loop never returns");
}

fn crash_then_recover(dir: &Path, json: Option<&Path>) -> Result<(), String> {
    let _ = std::fs::remove_dir_all(dir);
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = Command::new(exe)
        .arg("serve")
        .arg(dir)
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn serve child: {e}"))?;

    let lines = BufReader::new(child.stdout.take().expect("piped stdout")).lines();
    let mut seen = 0usize;
    for line in lines {
        if line.is_err() {
            break;
        }
        seen += 1;
        if seen >= SUBMISSIONS_BEFORE_KILL {
            break;
        }
    }
    // SIGKILL: the child gets no chance to flush or run destructors.
    child.kill().map_err(|e| format!("kill serve child: {e}"))?;
    let _ = child.wait();
    if seen < SUBMISSIONS_BEFORE_KILL {
        return Err(format!(
            "serve child exited after {seen}/{SUBMISSIONS_BEFORE_KILL} submissions instead of being killed"
        ));
    }
    println!("killed serve child after {seen} submissions");

    // Reopen the crashed store and walk the recovery protocol.
    let server = open(dir);
    let store = Arc::clone(server.store().expect("durable server has a store"));
    let recovered = store.recovered();
    let sealed_before = recovered.sealed.len();
    let pending = recovered.pending.len();
    println!(
        "reopened: {sealed_before} sealed, {pending} pending, {} warning(s)",
        recovered.findings.len()
    );
    if sealed_before + pending == 0 {
        return Err("kill landed before any instance was accepted — no recovery exercised".into());
    }

    let schema = flow().schema;
    server.register(SCHEMA, Arc::clone(&schema));
    let tickets = server
        .recover_pending()
        .map_err(|e| format!("recover_pending: {e}"))?;
    if tickets.len() != pending {
        return Err(format!(
            "recovery re-enqueued {} instance(s), expected the {pending} pending",
            tickets.len()
        ));
    }
    for ticket in tickets {
        let id = ticket.instance_id();
        ticket
            .wait()
            .map_err(|_| format!("re-executed instance {id} was abandoned"))?;
    }
    println!("re-executed {pending} pending instance(s)");
    drop(server);

    let report = store::fsck(dir).map_err(|e| format!("fsck: {e}"))?;
    write_report(json, &report)?;
    if !report.ok() {
        return Err(format!(
            "fsck found errors after recovery:\n{}",
            report.to_text()
        ));
    }

    let state = store::inspect(dir).map_err(|e| format!("inspect: {e}"))?;
    if !state.pending.is_empty() {
        return Err(format!(
            "{} instance(s) still pending after recovery",
            state.pending.len()
        ));
    }
    if state.sealed.len() != sealed_before + pending {
        return Err(format!(
            "{} sealed after recovery, expected {}",
            state.sealed.len(),
            sealed_before + pending
        ));
    }
    for summary in state.sealed.iter().take(3) {
        let id = summary.instance_id;
        let journal =
            store::fetch_journal(dir, id).map_err(|e| format!("fetch_journal({id}): {e}"))?;
        let outcome = ReplayEngine::new(Arc::clone(&schema), journal)
            .map_err(|d| format!("instance {id} journal rejected: {d}"))?
            .replay()
            .map_err(|d| format!("instance {id} diverged on replay: {d}"))?;
        println!(
            "instance {id}: replayed, {} frame(s) verified",
            outcome.frames_verified
        );
    }
    println!(
        "crash/recover smoke ok: {} sealed, fsck clean ({} warning(s))",
        state.sealed.len(),
        report.warnings
    );
    Ok(())
}

fn write_report(json: Option<&Path>, report: &FsckReport) -> Result<(), String> {
    let Some(path) = json else { return Ok(()) };
    std::fs::write(path, serde::json::to_string(report))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("fsck report -> {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        let dir = args.get(1).map(PathBuf::from).unwrap_or_else(|| {
            eprintln!("usage: durable_crash serve DIR");
            std::process::exit(2)
        });
        serve(&dir);
    }
    let mut dir = PathBuf::from("target/durable-crash-store");
    let mut json = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--dir" => match iter.next() {
                Some(v) => dir = PathBuf::from(v),
                None => {
                    eprintln!("--dir needs a value");
                    return ExitCode::from(2);
                }
            },
            "--json" => match iter.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--json needs a value");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other:?}\nusage: durable_crash [--dir DIR] [--json FILE]"
                );
                return ExitCode::from(2);
            }
        }
    }
    match crash_then_recover(&dir, json.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("durable_crash: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Figure 5(a): Work vs `%enabled` for strategies {PCC0, PCE0, NCC0,
//! NCE0}, `nb_rows = 4`.
//!
//! Expected shape (paper §5): two clusters — the `N*` programs perform
//! work roughly affine in `%enabled` (conservative mode skips disabled
//! tasks but executes every enabled one); the `P*` programs do strictly
//! less by pruning enabled-but-unneeded attributes, with the largest
//! gap (~60%) at `%enabled = 10` and convergence at `%enabled = 100`.

use decisionflow::engine::Strategy;
use dflow_bench::harness::{f1, ResultTable};
use dflowgen::PatternParams;
use dflowperf::pattern_sweep;

fn main() {
    let reps = 30;
    let strategies: Vec<Strategy> = ["PCC0", "PCE0", "NCC0", "NCE0"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let mut t = ResultTable::new(
        "Figure 5(a) — Work vs %enabled (nb_rows=4)",
        &["%enabled", "PCC0", "PCE0", "NCC0", "NCE0", "P-vs-N gain%"],
    );
    for pct in (10..=100).step_by(10) {
        let params = PatternParams {
            nb_rows: 4,
            pct_enabled: pct,
            ..Default::default()
        };
        let works: Vec<f64> = strategies
            .iter()
            .map(|&s| pattern_sweep(params, s, reps, 0xF16A).mean_work())
            .collect();
        let best_p = works[0].min(works[1]);
        let best_n = works[2].min(works[3]);
        let gain = if best_n > 0.0 {
            100.0 * (1.0 - best_p / best_n)
        } else {
            0.0
        };
        t.row(vec![
            pct.to_string(),
            f1(works[0]),
            f1(works[1]),
            f1(works[2]),
            f1(works[3]),
            f1(gain),
        ]);
    }
    t.emit("fig5a.csv");
}

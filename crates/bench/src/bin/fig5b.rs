//! Figure 5(b): Work vs `nb_rows` for strategies {PCC0, PCE0, NCC0,
//! NCE0}, `%enabled = 75`.

use decisionflow::engine::Strategy;
use dflow_bench::harness::{f1, ResultTable};
use dflowgen::PatternParams;
use dflowperf::pattern_sweep;

fn main() {
    let reps = 30;
    let strategies: Vec<Strategy> = ["PCC0", "PCE0", "NCC0", "NCE0"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let mut t = ResultTable::new(
        "Figure 5(b) — Work vs nb_rows (%enabled=75)",
        &["nb_rows", "PCC0", "PCE0", "NCC0", "NCE0"],
    );
    for rows in 2..=8 {
        let params = PatternParams {
            nb_rows: rows,
            pct_enabled: 75,
            ..Default::default()
        };
        let works: Vec<f64> = strategies
            .iter()
            .map(|&s| pattern_sweep(params, s, reps, 0xF16B).mean_work())
            .collect();
        t.row(vec![
            rows.to_string(),
            f1(works[0]),
            f1(works[1]),
            f1(works[2]),
            f1(works[3]),
        ]);
    }
    t.emit("fig5b.csv");
}

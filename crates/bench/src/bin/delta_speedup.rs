//! Delta-resubmission speedup: goodput of warm (snapshot-reusing)
//! resubmission waves versus cold full recomputation, on a flow built
//! so a single-source change has a **small delta cone**.
//!
//! The generator's grid patterns are single-source (one binding feeds
//! every row), which makes any churn invalidate the whole flow — the
//! worst case for incremental recomputation. Real decision flows have
//! many independent inputs (the paper's insurance example: damage
//! photos, police report, claim history…), so this bench hand-builds
//! that shape: `ARMS` independent source→chain arms joined by one
//! synthesis target. Rebinding one source invalidates one arm plus the
//! synthesis; everything else is adopted from the client's previous
//! completion snapshot.
//!
//! Two [`Arrival::Resubmission`] runs over the same seed and churn:
//!
//! * **cold** — `delta_rate 0`, memoization off: every wave recomputes
//!   the full flow (the pre-statestore baseline);
//! * **warm** — `delta_rate 1`, memoization on: every resubmission
//!   adopts the out-of-cone arms from its snapshot, and clients
//!   sharing a flow reuse each other's in-cone computations through
//!   the memo table (so the report's memo hit rate is non-zero).
//!
//! Task bodies sleep `cost × unit_delay` ([`with_unit_delay`]) to
//! model remote-service queries, so worker capacity is the finite
//! resource and throughput measures work actually avoided — CI gates
//! `warm ≥ 3× cold` via `bench_gate delta`.
//!
//! Flags: `--smoke` (CI-sized run), `--json PATH` (BENCH_*.json
//! snapshot for the gate).
//!
//! [`Arrival::Resubmission`]: dflowperf::Arrival::Resubmission
//! [`with_unit_delay`]: dflowgen::GeneratedFlow::with_unit_delay

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use decisionflow::engine::Strategy;
use decisionflow::prelude::{Expr, SchemaBuilder, SourceValues, Task, Value};
use dflow_bench::harness::{f1, f2, ResultTable};
use dflowgen::{GeneratedFlow, PatternParams};
use dflowperf::{Arrival, Server, Workload};

struct Args {
    smoke: bool,
    json: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut smoke = false;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--json" => {
                json = Some(PathBuf::from(
                    args.next().expect("--json needs a file path"),
                ))
            }
            other => panic!("unknown flag {other:?} (expected --smoke / --json PATH)"),
        }
    }
    Args { smoke, json }
}

/// `arms` independent source→chain arms of `depth` tasks each, joined
/// by one synthesis target — the multi-input shape where a one-source
/// delta leaves `arms − 1` arms untouched.
fn armed_flow(arms: usize, depth: usize, cost: u64) -> GeneratedFlow {
    let mut b = SchemaBuilder::new();
    let mut sources = SourceValues::new();
    let mut tips = Vec::new();
    for i in 0..arms {
        let s = b.source(format!("s{i}"));
        sources.set(s, Value::Int(i as i64 * 1000));
        let mut prev = s;
        for d in 0..depth {
            let salt = (i * 131 + d) as u64;
            prev = b.attr(
                format!("a{i}_{d}"),
                Task::query(cost, move |ins: &[Value]| {
                    let mut h = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    for v in ins {
                        h = h.rotate_left(13) ^ v.fingerprint();
                    }
                    Value::Int((h % 100_000) as i64)
                }),
                vec![prev],
                Expr::Lit(true),
            );
        }
        tips.push(prev);
    }
    let t = b.attr(
        "synthesis",
        Task::query(cost, |ins: &[Value]| {
            Value::Int(ins.iter().map(|v| v.fingerprint() as i64 % 1000).sum())
        }),
        tips,
        Expr::Lit(true),
    );
    b.mark_target(t);
    GeneratedFlow {
        schema: Arc::new(b.build().expect("armed flow is well-formed")),
        sources,
        params: PatternParams::default(),
        seed: 0,
        planned_enabled: arms * depth + 1,
    }
}

fn main() {
    let args = parse_args();
    let (arms, depth, clients, waves) = if args.smoke {
        (8, 2, 4, 8)
    } else {
        (8, 3, 8, 16)
    };
    // 200µs per cost unit, cost 2 per task: a cold instance holds a
    // worker for ~(arms·depth+1)·0.4ms of simulated query latency, a
    // warm one for ~(depth+1)·0.4ms.
    let flow = armed_flow(arms, depth, 2).with_unit_delay(Duration::from_micros(200));
    let strategy: Strategy = "PCE100".parse().unwrap();

    let mode = if args.smoke { " (smoke)" } else { "" };
    let mut t = ResultTable::new(
        format!(
            "Delta speedup{mode} — {arms}-arm flow (depth {depth}), churn 1 source/wave, \
             {clients} clients × {waves} waves"
        ),
        &[
            "mode",
            "throughput/s",
            "mean_resp_ms",
            "delta_reused",
            "delta_reexec",
            "memo_hit_pct",
        ],
    );
    for (mode, delta_rate, memoize) in [("cold", 0.0, 0), ("warm", 1.0, 4096)] {
        let r = Workload::new(vec![flow.clone()])
            .arrivals(Arrival::Resubmission {
                clients,
                waves,
                delta_rate,
                churn: 1,
            })
            // Exclude wave 0 — the labeled seeding wave is cold in
            // both modes by construction.
            .warmup(clients)
            .seed(0xDE17A)
            .strategy(strategy)
            .run(&Server {
                shards: 1,
                workers_per_shard: 4,
                memoize,
                ..Server::default()
            })
            .expect("resubmission run");
        assert_eq!(r.completed, clients * waves);
        let (reused, reexec) = r.delta_counts().unwrap_or((0, 0));
        if args.smoke && mode == "warm" {
            assert!(reused > 0, "smoke: warm mode must reuse snapshot values");
            assert!(
                r.memo_hit_rate().unwrap_or(0.0) > 0.0,
                "smoke: clients sharing a flow must hit the memo table"
            );
        }
        t.row(vec![
            mode.to_string(),
            f1(r.throughput_per_sec),
            f2(r.responses.mean()),
            reused.to_string(),
            reexec.to_string(),
            f1(100.0 * r.memo_hit_rate().unwrap_or(0.0)),
        ]);
    }
    t.emit("delta_speedup.csv");
    if let Some(path) = &args.json {
        t.emit_json(path);
    }
}

//! Figure 9(a): the empirical `Db` function — database response time
//! per unit of processing vs global multiprogramming level (Gmpl).
//!
//! Expected shape: ≈ the zero-load unit demand (12.5 ms with Table 1
//! parameters) at Gmpl = 1, rising roughly linearly once the 4 CPUs
//! saturate, into the ~100 ms range by Gmpl = 35.

use dflow_bench::harness::{f1, f2, ResultTable};
use simdb::{measure_db_function, measure_db_function_open, DbConfig};

fn main() {
    let cfg = DbConfig::default();
    let levels: Vec<u32> = (1..=35).step_by(2).collect();
    let points = measure_db_function(cfg, levels, 0x9A);
    let mut t = ResultTable::new(
        "Figure 9(a) — UnitTime vs Gmpl (simulated database, Table 1 params)",
        &["Gmpl", "UnitTime(ms)"],
    );
    for p in &points {
        t.row(vec![format!("{:.0}", p.gmpl), f1(p.unit_time_ms)]);
    }
    t.emit("fig9a.csv");

    // Companion curve: the same database calibrated under open Poisson
    // unit arrivals (used by the fig9b analytic model; see
    // EXPERIMENTS.md for why open calibration matters).
    let rates: Vec<f64> = (1..=13).map(|i| i as f64 * 30.0).collect();
    let open = measure_db_function_open(cfg, rates, 0x9A);
    let mut t2 = ResultTable::new(
        "Figure 9(a) companion — open-arrival calibration of the same database",
        &["mean Gmpl", "UnitTime(ms)"],
    );
    for p in &open {
        t2.row(vec![f2(p.gmpl), f1(p.unit_time_ms)]);
    }
    t2.emit("fig9a_open.csv");
}

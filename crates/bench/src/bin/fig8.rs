//! Figure 8: guideline maps — minimal TimeInUnits for a bound on Work,
//! with the execution program achieving it.
//!
//! (a) `nb_rows = 4`, `%enabled ∈ {10, 25, 50, 75, 100}`;
//! (b) `%enabled = 75`, `nb_rows ∈ {1, 2, 4, 8, 16}`.
//!
//! Each frontier point reads: "with a work budget of `work` units, the
//! best response time is `minT`, obtained by `program`".

use dflow_bench::harness::{f1, ResultTable};
use dflowgen::PatternParams;
use dflowperf::{guideline_for_pattern, portfolio};

fn emit_map(title: &str, csv: &str, patterns: &[(String, PatternParams)]) {
    let strategies = portfolio(&[20, 40, 60, 80, 100]);
    let mut t = ResultTable::new(title, &["pattern", "work<=", "minT", "program"]);
    for (label, params) in patterns {
        let map = guideline_for_pattern(*params, &strategies, 15, 0xF168);
        for p in map.frontier() {
            t.row(vec![
                label.clone(),
                f1(p.work),
                f1(p.time_units),
                p.strategy.to_string(),
            ]);
        }
    }
    t.emit(csv);
}

fn main() {
    let a: Vec<(String, PatternParams)> = [10u32, 25, 50, 75, 100]
        .iter()
        .map(|&pct| {
            (
                format!("%enabled={pct}"),
                PatternParams {
                    nb_rows: 4,
                    pct_enabled: pct,
                    ..Default::default()
                },
            )
        })
        .collect();
    emit_map(
        "Figure 8(a) — guideline map, %enabled varying (nb_rows=4)",
        "fig8a.csv",
        &a,
    );

    let b: Vec<(String, PatternParams)> = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&rows| {
            (
                format!("nb_rows={rows}"),
                PatternParams {
                    nb_rows: rows,
                    pct_enabled: 75,
                    ..Default::default()
                },
            )
        })
        .collect();
    emit_map(
        "Figure 8(b) — guideline map, nb_rows varying (%enabled=75)",
        "fig8b.csv",
        &b,
    );
}

//! `srclint` — source-convention lint for the hot path.
//!
//! Mechanical conventions the code review keeps re-litigating, checked
//! in CI instead:
//!
//! * **No bare `.unwrap()`** in hot-path files (`decisionflow`'s
//!   `server.rs` and everything under `engine/`, `store/`, and
//!   `statestore/`): a worker, shard, or WAL-appender thread panicking
//!   takes instances with it, so every panic site must be a documented
//!   `.expect(..)`.
//! * **Every `.expect(` in those files carries a `// invariant:`
//!   comment** on the same or the previous line, naming why the value
//!   is always there.
//! * **Every non-`Relaxed` atomic ordering** (`SeqCst`, `Acquire`,
//!   `Release`, `AcqRel`) anywhere in `decisionflow/src` carries a
//!   `// ordering:` comment on the same or the previous line, naming
//!   what the ordering pairs with.
//! * **Every fsync site** (`.sync_all(` / `.sync_data(`) anywhere in
//!   `decisionflow/src` carries a `// durability:` comment on the
//!   same or the previous line, naming what the sync makes durable —
//!   fsyncs are the WAL's only persistence points *and* its dominant
//!   cost, so each one must justify itself.
//!
//! Test modules (everything from the first `#[cfg(test)]` to end of
//! file) and comment lines are exempt — tests may unwrap freely.
//!
//! ```text
//! cargo run -p dflow-bench --bin srclint
//! ```
//!
//! Exits 0 when clean, 1 with one `file:line: message` per violation.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Repo root, computed from this crate's manifest dir (crates/bench)
/// so the lint works from any working directory.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the repo root")
        .to_path_buf()
}

/// Hot-path files: a panic here unwinds a shard worker or a WAL
/// appender lane.
fn hot_path_files(root: &Path) -> Vec<PathBuf> {
    let src = root.join("crates/decisionflow/src");
    // api.rs carries the per-shard event-lane hot path (publish_batch
    // runs on every completion), so it lints at hot-path strictness.
    let mut files = vec![src.join("server.rs"), src.join("api.rs")];
    for dir in ["engine", "store", "statestore"] {
        let dir = src.join(dir);
        let entries =
            std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()));
        for entry in entries {
            let path = entry.expect("readable dir entry").path();
            if path.extension().is_some_and(|x| x == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Every `.rs` file under `crates/decisionflow/src`, recursively.
fn all_decisionflow_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.join("crates/decisionflow/src")];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()));
        for entry in entries {
            let path = entry.expect("readable dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|x| x == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// The non-test, non-comment lines of a file: `(line_number, text)`.
/// Everything from the first `#[cfg(test)]` onward is test code.
fn lintable_lines(source: &str) -> Vec<(usize, &str)> {
    source
        .lines()
        .take_while(|l| !l.trim_start().starts_with("#[cfg(test)]"))
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim_start().starts_with("//"))
        .collect()
}

/// Does the annotation appear on this line (after any code) or in the
/// contiguous `//` comment block immediately above it?
fn annotated(lines: &[(usize, &str)], idx: usize, source: &str, marker: &str) -> bool {
    let (lineno, line) = lines[idx];
    if line.contains(marker) {
        return true;
    }
    // Walk the preceding comment block (comment lines were filtered
    // out of `lines`, so consult the raw text).
    let raw: Vec<&str> = source.lines().collect();
    let mut i = lineno - 1; // index of the flagged line in `raw`
    while i > 0 && raw[i - 1].trim_start().starts_with("//") {
        i -= 1;
        if raw[i].contains(marker) {
            return true;
        }
    }
    false
}

const ORDERINGS: [&str; 4] = [
    "Ordering::SeqCst",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

fn lint_file(path: &Path, hot: bool, violations: &mut Vec<String>) {
    let source =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let rel = path.display();
    let lines = lintable_lines(&source);
    for (idx, &(lineno, line)) in lines.iter().enumerate() {
        if hot && line.contains(".unwrap()") {
            violations.push(format!(
                "{rel}:{lineno}: bare `.unwrap()` on the hot path — use `.expect(..)` \
                 with a `// invariant:` comment"
            ));
        }
        if hot && line.contains(".expect(") && !annotated(&lines, idx, &source, "// invariant:") {
            violations.push(format!(
                "{rel}:{lineno}: `.expect(` without a `// invariant:` comment on this \
                 or the previous line"
            ));
        }
        if ORDERINGS.iter().any(|o| line.contains(o))
            && !annotated(&lines, idx, &source, "// ordering:")
        {
            violations.push(format!(
                "{rel}:{lineno}: non-Relaxed atomic ordering without a `// ordering:` \
                 comment on this or the previous line"
            ));
        }
        if (line.contains(".sync_all(") || line.contains(".sync_data("))
            && !annotated(&lines, idx, &source, "// durability:")
        {
            violations.push(format!(
                "{rel}:{lineno}: fsync without a `// durability:` comment on this or \
                 the previous line naming what it makes durable"
            ));
        }
    }
}

fn main() -> ExitCode {
    let root = repo_root();
    let hot: Vec<PathBuf> = hot_path_files(&root);
    let mut violations = Vec::new();
    for path in all_decisionflow_files(&root) {
        lint_file(&path, hot.contains(&path), &mut violations);
    }
    if violations.is_empty() {
        println!("srclint: clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("srclint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

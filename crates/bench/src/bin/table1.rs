//! Table 1: simulation parameters.
//!
//! Prints the parameter inventory of the reproduction side by side with
//! the paper's values, confirming the defaults match.

use dflow_bench::harness::ResultTable;
use dflowgen::PatternParams;
use simdb::DbConfig;

fn main() {
    let p = PatternParams::default();
    let d = DbConfig::default();
    let mut t = ResultTable::new(
        "Table 1 — simulation parameters (paper vs this implementation)",
        &["parameter", "paper", "here", "description"],
    );
    let mut row = |name: &str, paper: &str, here: String, desc: &str| {
        t.row(vec![name.into(), paper.into(), here, desc.into()]);
    };
    row(
        "nb_nodes",
        "64",
        p.nb_nodes.to_string(),
        "# of internal nodes",
    );
    row(
        "nb_rows",
        "[1,16]",
        format!("{} (sweep)", p.nb_rows),
        "# of schema rows",
    );
    row(
        "%enabled",
        "[10,100]",
        format!("{} (sweep)", p.pct_enabled),
        "% of enabled nodes",
    );
    row(
        "%enabler",
        "50",
        p.pct_enabler.to_string(),
        "% of potential enablers",
    );
    row(
        "%enabling_hop",
        "50",
        p.pct_enabling_hop.to_string(),
        "max enabling edge hop (% of columns)",
    );
    row(
        "Min_pred",
        "1",
        p.min_pred.to_string(),
        "min predicates per condition",
    );
    row(
        "Max_pred",
        "4",
        p.max_pred.to_string(),
        "max predicates per condition",
    );
    row(
        "%added_data_edges",
        "[-25,+25]",
        p.pct_added_data_edges.to_string(),
        "% of data edges added to skeleton",
    );
    row(
        "%data_hop",
        "50",
        p.pct_data_hop.to_string(),
        "max data edge hop (% of columns)",
    );
    row(
        "module_cost",
        "[1,5]",
        format!("[{},{}]", p.module_cost.0, p.module_cost.1),
        "units of cost per module",
    );
    row(
        "num_CPUs",
        "4",
        d.num_cpus.to_string(),
        "# of CPUs in the database",
    );
    row(
        "num_disks",
        "10",
        d.num_disks.to_string(),
        "# of disks in the database",
    );
    row(
        "unit_CPU_cost",
        "1",
        d.unit_cpu_cost.to_string(),
        "units of CPU per execution unit",
    );
    row(
        "unit_IO_cost",
        "1",
        d.unit_io_pages.to_string(),
        "IO pages per unit execution",
    );
    row(
        "%IO_hit",
        "50",
        format!("{:.0}", d.io_hit_prob * 100.0),
        "probability of buffer hit",
    );
    row(
        "IO_delay",
        "5",
        format!("{:.0}", d.io_delay_ms),
        "IO delay (ms)",
    );
    t.emit("table1.csv");
}

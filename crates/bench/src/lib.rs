//! # dflow-bench — experiment harnesses
//!
//! One binary per table/figure of Hull et al. (ICDE 2000); see
//! `src/bin/`. Shared plumbing (CSV emission, common parameter grids)
//! lives here.

#![warn(missing_docs)]

pub mod harness;

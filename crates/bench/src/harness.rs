//! Shared experiment plumbing: table printing and CSV emission.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-oriented results table that prints aligned text and
/// writes CSV next to the experiment outputs.
pub struct ResultTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Start a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> ResultTable {
        ResultTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let hdr: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", hdr.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(hdr.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Render as a JSON snapshot: `{"title": .., "rows": [{col: cell,
    /// ..}, ..]}` — the `BENCH_*.json` format CI publishes into job
    /// summaries so the perf trajectory is grep-able across runs.
    pub fn to_json(&self) -> String {
        use serde::Content;
        let rows: Vec<Content> = self
            .rows
            .iter()
            .map(|row| {
                Content::Map(
                    self.headers
                        .iter()
                        .zip(row)
                        .map(|(h, c)| (h.clone(), Content::Str(c.clone())))
                        .collect(),
                )
            })
            .collect();
        let doc = Content::Map(vec![
            ("title".to_string(), Content::Str(self.title.clone())),
            ("rows".to_string(), Content::Seq(rows)),
        ]);
        serde::json::to_string(&doc)
    }

    /// Write the JSON snapshot to `path` (see
    /// [`ResultTable::to_json`]). IO failures are reported but
    /// non-fatal, matching [`ResultTable::emit`].
    pub fn emit_json(&self, path: &Path) {
        if let Err(e) = std::fs::write(path, self.to_json() + "\n") {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("(json written to {})", path.display());
        }
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Print the text table to stdout and write the CSV beside the
    /// repository's experiment outputs (`results/<name>.csv`). IO
    /// failures are reported but non-fatal: the printed table is the
    /// primary artifact.
    pub fn emit(&self, csv_name: &str) {
        println!("{}", self.to_text());
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create results dir: {e}");
            return;
        }
        let path = dir.join(csv_name);
        if let Err(e) = std::fs::write(&path, self.to_csv()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            eprintln!("(csv written to {})", path.display());
        }
    }
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_text_and_csv() {
        let mut t = ResultTable::new("demo", &["x", "y"]);
        t.row(vec!["1".into(), "long-cell".into()]);
        t.row(vec!["200".into(), "b".into()]);
        let text = t.to_text();
        assert!(text.contains("## demo"));
        assert!(text.contains("long-cell"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "x,y");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_rejected() {
        let mut t = ResultTable::new("demo", &["x", "y"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f2(1.256), "1.26");
    }

    #[test]
    fn json_snapshot_keys_rows_by_header() {
        let mut t = ResultTable::new("demo", &["x", "y"]);
        t.row(vec!["1".into(), "a".into()]);
        t.row(vec!["2".into(), "b".into()]);
        let json = t.to_json();
        assert_eq!(
            json,
            r#"{"title":"demo","rows":[{"x":"1","y":"a"},{"x":"2","y":"b"}]}"#
        );
        // And it parses back as a content tree.
        let parsed = serde::json::parse(&json).unwrap();
        let rows = parsed
            .as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == "rows"))
            .and_then(|(_, v)| v.as_seq())
            .unwrap();
        assert_eq!(rows.len(), 2);
    }
}

//! Simulation-substrate speed: events/second of the desim kernel and
//! units/second of the simulated database (these bound how large the
//! Figure 9 experiments can be).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use desim::{Model, Scheduler, SimTime, Simulation};
use simdb::{DbConfig, DbEvent, QueryJob, SimDb};

struct Pingers {
    remaining: u64,
}

impl Model for Pingers {
    type Event = ();
    fn handle(&mut self, _: (), s: &mut Scheduler<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            s.schedule_in(SimTime::from_micros(10), ());
        }
    }
}

fn bench_kernel_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("desim_kernel");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("chained_events_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Pingers { remaining: n });
            sim.prime(SimTime::ZERO, ());
            sim.run();
            std::hint::black_box(sim.events_dispatched())
        });
    });
    group.finish();
}

struct Batch {
    db: SimDb,
    done: u64,
}

#[derive(Clone, Copy)]
enum Ev {
    Kick,
    Db(DbEvent),
}

impl Model for Batch {
    type Event = Ev;
    fn handle(&mut self, ev: Ev, s: &mut Scheduler<Ev>) {
        match ev {
            Ev::Kick => {
                for id in 0..64 {
                    let _ = self.db.submit(QueryJob { id, cost: 8 }, s, &Ev::Db);
                }
            }
            Ev::Db(e) => {
                if self.db.handle(e, s, &Ev::Db).is_some() {
                    self.done += 1;
                }
            }
        }
    }
}

fn bench_simdb_units(c: &mut Criterion) {
    let mut group = c.benchmark_group("simdb");
    let units = 64u64 * 8;
    group.throughput(Throughput::Elements(units));
    group.bench_function("batch_64q_x8u", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Batch {
                db: SimDb::new(DbConfig::default(), 5),
                done: 0,
            });
            sim.prime(SimTime::ZERO, Ev::Kick);
            sim.run();
            std::hint::black_box(sim.model().done)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_kernel_events, bench_simdb_units);
criterion_main!(benches);

//! Engine throughput: instances executed per second of host CPU under
//! the canonical strategies, plus the declarative oracle as a baseline
//! (the oracle does no scheduling/propagation bookkeeping, so the gap
//! is the price of optimized execution).

use criterion::{criterion_group, criterion_main, Criterion};
use decisionflow::engine::run_unit_time;
use decisionflow::snapshot::complete_snapshot;
use dflowgen::{generate, PatternParams};

fn bench_engine_strategies(c: &mut Criterion) {
    let params = PatternParams {
        nb_nodes: 64,
        nb_rows: 4,
        pct_enabled: 75,
        ..Default::default()
    };
    let flow = generate(params, 123).expect("valid");
    let mut group = c.benchmark_group("engine_instance_64n");
    for strat in ["PCE0", "NCE0", "PCE100", "PSE100", "PSC40"] {
        let strategy = strat.parse().unwrap();
        group.bench_function(strat, |b| {
            b.iter(|| {
                let out = run_unit_time(&flow.schema, strategy, &flow.sources).unwrap();
                std::hint::black_box(out.time_units)
            });
        });
    }
    group.bench_function("oracle_complete_snapshot", |b| {
        b.iter(|| {
            let snap = complete_snapshot(&flow.schema, &flow.sources).unwrap();
            std::hint::black_box(snap.len())
        });
    });
    group.finish();
}

fn bench_schema_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("schema_generation");
    for nodes in [64usize, 256] {
        let params = PatternParams {
            nb_nodes: nodes,
            nb_rows: 4,
            pct_enabled: 75,
            ..Default::default()
        };
        group.bench_function(format!("generate_{nodes}n"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let flow = generate(params, seed).unwrap();
                std::hint::black_box(flow.schema.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_strategies, bench_schema_generation);
criterion_main!(benches);

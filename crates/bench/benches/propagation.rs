//! Propagation Algorithm cost: the paper claims the prequalifier's
//! cost is *linear in the size of the decision flow, regardless of task
//! execution order* (§4). This bench scales `nb_nodes` and reports both
//! wall time per instance and the engine's own `propagation_steps`
//! counter; linear scaling shows as flat time-per-node.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decisionflow::engine::run_unit_time;
use dflowgen::{generate, PatternParams};

fn bench_propagation_linearity(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation_linearity");
    for nodes in [32usize, 64, 128, 256, 512] {
        let params = PatternParams {
            nb_nodes: nodes,
            nb_rows: 4,
            pct_enabled: 50,
            ..Default::default()
        };
        let flow = generate(params, 42).expect("valid");
        let strategy = "PCE0".parse().unwrap();
        // Report steps/node once so the bench log captures the metric.
        let out = run_unit_time(&flow.schema, strategy, &flow.sources).unwrap();
        eprintln!(
            "nb_nodes={nodes}: propagation_steps={} ({:.2} per node+edge)",
            out.metrics.propagation_steps,
            out.metrics.propagation_steps as f64
                / (flow.schema.len() + flow.schema.edge_count()) as f64
        );
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                let out = run_unit_time(&flow.schema, strategy, &flow.sources).unwrap();
                std::hint::black_box(out.metrics.work)
            });
        });
    }
    group.finish();
}

fn bench_scheduling_orders(c: &mut Criterion) {
    // Propagation cost must be order-independent: earliest vs cheapest
    // scheduling should not change the asymptotics.
    let params = PatternParams {
        nb_nodes: 256,
        nb_rows: 8,
        pct_enabled: 50,
        ..Default::default()
    };
    let flow = generate(params, 7).expect("valid");
    let mut group = c.benchmark_group("propagation_order_independence");
    for strat in ["PCE0", "PCC0", "PCE100", "PSE100"] {
        let strategy = strat.parse().unwrap();
        group.bench_function(strat, |b| {
            b.iter(|| {
                let out = run_unit_time(&flow.schema, strategy, &flow.sources).unwrap();
                std::hint::black_box(out.metrics.propagation_steps)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_propagation_linearity,
    bench_scheduling_orders
);
criterion_main!(benches);

//! The simulated database server.
//!
//! Queries arrive with a cost in *units of processing*. Each unit is a
//! CPU service slice followed by its page accesses; pages miss the
//! buffer pool with probability `1 − %IO_hit` and each miss costs one
//! disk service at a uniformly chosen disk. Units of one query execute
//! sequentially; concurrency comes from multiple queries in process —
//! the database's global multiprogramming level **Gmpl**.
//!
//! The model is deliberately the physical model of \[ACL87\] (service
//! queues for CPUs and disks), which is what the paper built on CSIM-18.
//!
//! `SimDb` is a *sub-model*: it does not own the event loop. Embed it in
//! any [`desim::Model`] by forwarding its [`DbEvent`]s and wrapping them
//! into the host's event alphabet.

use std::collections::HashMap;

use desim::{Scheduler, ServiceCenter, SimTime, Tally, TimeWeighted};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::DbConfig;

/// A query submitted to the database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryJob {
    /// Caller-assigned identifier, echoed back on completion.
    pub id: u64,
    /// Cost in units of processing.
    pub cost: u64,
}

/// Internal events of the database model. Forward these from the host
/// model's `handle` into [`SimDb::handle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DbEvent {
    /// A CPU slice finished for the given job.
    CpuDone(u64),
    /// A disk access finished for the given job.
    DiskDone {
        /// Job id.
        job: u64,
        /// Disk index the access ran on.
        disk: usize,
    },
}

/// Completion notice returned to the host model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryCompletion {
    /// The finished job.
    pub job: QueryJob,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Completion time.
    pub completed_at: SimTime,
}

impl QueryCompletion {
    /// Response time of this query.
    pub fn response(&self) -> SimTime {
        self.completed_at.saturating_sub(self.submitted_at)
    }
}

struct JobState {
    job: QueryJob,
    remaining_units: u64,
    pending_ios: u32,
    submitted_at: SimTime,
    unit_started_at: SimTime,
}

/// The simulated database server (see module docs).
pub struct SimDb {
    cfg: DbConfig,
    cpu: ServiceCenter<u64>,
    disks: Vec<ServiceCenter<u64>>,
    jobs: HashMap<u64, JobState>,
    rng: StdRng,
    // statistics
    gmpl: TimeWeighted,
    unit_times: Tally,
    query_times: Tally,
    units_done: u64,
}

impl SimDb {
    /// Create a database with the given configuration and RNG seed
    /// (buffer hits and disk choice are the only stochastic elements).
    pub fn new(cfg: DbConfig, seed: u64) -> SimDb {
        cfg.validate().expect("invalid DbConfig");
        SimDb {
            cpu: ServiceCenter::new(cfg.num_cpus),
            disks: (0..cfg.num_disks).map(|_| ServiceCenter::new(1)).collect(),
            jobs: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            gmpl: TimeWeighted::new(),
            unit_times: Tally::new(),
            query_times: Tally::new(),
            units_done: 0,
            cfg,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    /// Number of queries currently in process (the instantaneous Gmpl).
    pub fn active_queries(&self) -> usize {
        self.jobs.len()
    }

    /// Time-averaged global multiprogramming level.
    pub fn mean_gmpl(&self) -> f64 {
        self.gmpl.mean()
    }

    /// Statistics over unit-of-processing response times.
    pub fn unit_times(&self) -> &Tally {
        &self.unit_times
    }

    /// Statistics over whole-query response times.
    pub fn query_times(&self) -> &Tally {
        &self.query_times
    }

    /// Units of processing completed so far.
    pub fn units_done(&self) -> u64 {
        self.units_done
    }

    /// Mean CPU utilization (0..=1).
    pub fn cpu_utilization(&self) -> f64 {
        self.cpu.utilization()
    }

    /// Reset statistics windows (e.g. after warmup) without disturbing
    /// in-flight work.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.gmpl = TimeWeighted::new();
        self.gmpl.observe(now, self.jobs.len() as f64);
        self.unit_times = Tally::new();
        self.query_times = Tally::new();
        self.units_done = 0;
    }

    /// Submit a query. Returns the completion immediately if the query
    /// has zero cost; otherwise the job enters the CPU queue and will
    /// complete via [`DbEvent`]s.
    pub fn submit<E>(
        &mut self,
        job: QueryJob,
        sched: &mut Scheduler<E>,
        wrap: &impl Fn(DbEvent) -> E,
    ) -> Option<QueryCompletion> {
        let now = sched.now();
        if job.cost == 0 {
            return Some(QueryCompletion {
                job,
                submitted_at: now,
                completed_at: now,
            });
        }
        let prev = self.jobs.insert(
            job.id,
            JobState {
                job,
                remaining_units: job.cost,
                pending_ios: 0,
                submitted_at: now,
                unit_started_at: now,
            },
        );
        assert!(prev.is_none(), "duplicate job id {}", job.id);
        self.gmpl.observe(now, self.jobs.len() as f64);
        self.start_unit(job.id, sched, wrap);
        None
    }

    /// Process one database event; returns the completion if the event
    /// finished a query.
    pub fn handle<E>(
        &mut self,
        ev: DbEvent,
        sched: &mut Scheduler<E>,
        wrap: &impl Fn(DbEvent) -> E,
    ) -> Option<QueryCompletion> {
        match ev {
            DbEvent::CpuDone(id) => {
                // Free the CPU; if a queued job was admitted, schedule
                // its own CpuDone.
                if let Some(next) = self.cpu.complete(sched.now()) {
                    sched.schedule_at(next.completes_at, wrap(DbEvent::CpuDone(next.job)));
                }
                // Page accesses for the unit that just left the CPU.
                let misses = self.sample_misses();
                if misses == 0 {
                    self.finish_unit(id, sched, wrap)
                } else {
                    self.jobs
                        .get_mut(&id)
                        .expect("CpuDone for unknown job")
                        .pending_ios = misses;
                    self.start_io(id, sched, wrap);
                    None
                }
            }
            DbEvent::DiskDone { job: id, disk } => {
                if let Some(next) = self.disks[disk].complete(sched.now()) {
                    sched.schedule_at(
                        next.completes_at,
                        wrap(DbEvent::DiskDone {
                            job: next.job,
                            disk,
                        }),
                    );
                }
                let st = self.jobs.get_mut(&id).expect("DiskDone for unknown job");
                st.pending_ios -= 1;
                if st.pending_ios > 0 {
                    self.start_io(id, sched, wrap);
                    None
                } else {
                    self.finish_unit(id, sched, wrap)
                }
            }
        }
    }

    fn sample_service(&mut self, mean: desim::SimTime) -> desim::SimTime {
        match self.cfg.service_dist {
            crate::config::ServiceDist::Deterministic => mean,
            crate::config::ServiceDist::Exponential => desim::exp_time(&mut self.rng, mean),
        }
    }

    fn sample_misses(&mut self) -> u32 {
        let mut misses = 0;
        for _ in 0..self.cfg.unit_io_pages {
            if !desim::bernoulli(&mut self.rng, self.cfg.io_hit_prob) {
                misses += 1;
            }
        }
        misses
    }

    fn start_unit<E>(&mut self, id: u64, sched: &mut Scheduler<E>, wrap: &impl Fn(DbEvent) -> E) {
        let now = sched.now();
        let service = self.sample_service(self.cfg.cpu_service());
        let st = self.jobs.get_mut(&id).expect("start_unit for unknown job");
        st.unit_started_at = now;
        if let Some(adm) = self.cpu.submit(now, id, service) {
            sched.schedule_at(adm.completes_at, wrap(DbEvent::CpuDone(adm.job)));
        }
    }

    fn start_io<E>(&mut self, id: u64, sched: &mut Scheduler<E>, wrap: &impl Fn(DbEvent) -> E) {
        let now = sched.now();
        let disk =
            desim::uniform_inclusive(&mut self.rng, 0, self.cfg.num_disks as u64 - 1) as usize;
        let service = self.sample_service(self.cfg.io_service());
        if let Some(adm) = self.disks[disk].submit(now, id, service) {
            sched.schedule_at(
                adm.completes_at,
                wrap(DbEvent::DiskDone { job: adm.job, disk }),
            );
        }
    }

    fn finish_unit<E>(
        &mut self,
        id: u64,
        sched: &mut Scheduler<E>,
        wrap: &impl Fn(DbEvent) -> E,
    ) -> Option<QueryCompletion> {
        let now = sched.now();
        let st = self.jobs.get_mut(&id).expect("finish_unit for unknown job");
        self.units_done += 1;
        self.unit_times
            .add_time(now.saturating_sub(st.unit_started_at));
        st.remaining_units -= 1;
        if st.remaining_units > 0 {
            self.start_unit(id, sched, wrap);
            return None;
        }
        let st = self.jobs.remove(&id).expect("job vanished");
        self.gmpl.observe(now, self.jobs.len() as f64);
        let completion = QueryCompletion {
            job: st.job,
            submitted_at: st.submitted_at,
            completed_at: now,
        };
        self.query_times.add_time(completion.response());
        Some(completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{Model, RunOutcome, Simulation};

    /// Host model: submits a batch of queries at t=0, collects
    /// completions, stops when all are done.
    struct Host {
        db: SimDb,
        to_submit: Vec<QueryJob>,
        completions: Vec<QueryCompletion>,
    }

    #[derive(Clone, Copy, Debug)]
    enum Ev {
        Kick,
        Db(DbEvent),
    }

    impl Model for Host {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, sched: &mut Scheduler<Ev>) {
            match ev {
                Ev::Kick => {
                    for job in self.to_submit.drain(..) {
                        if let Some(c) = self.db.submit(job, sched, &Ev::Db) {
                            self.completions.push(c);
                        }
                    }
                }
                Ev::Db(dbev) => {
                    if let Some(c) = self.db.handle(dbev, sched, &Ev::Db) {
                        self.completions.push(c);
                    }
                }
            }
        }
    }

    fn run_batch(cfg: DbConfig, jobs: Vec<QueryJob>, seed: u64) -> (Vec<QueryCompletion>, SimDb) {
        let mut sim = Simulation::new(Host {
            db: SimDb::new(cfg, seed),
            to_submit: jobs,
            completions: vec![],
        });
        sim.prime(SimTime::ZERO, Ev::Kick);
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        let host = sim.into_model();
        (host.completions, host.db)
    }

    #[test]
    fn single_query_no_contention() {
        // All pages hit (io_hit=1): a cost-3 query takes 3 CPU slices.
        let cfg = DbConfig {
            io_hit_prob: 1.0,
            service_dist: crate::config::ServiceDist::Deterministic,
            ..DbConfig::default()
        };
        let (done, db) = run_batch(cfg, vec![QueryJob { id: 1, cost: 3 }], 7);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].response(), SimTime::from_millis(30));
        assert_eq!(db.units_done(), 3);
        assert_eq!(db.active_queries(), 0);
    }

    #[test]
    fn all_misses_add_io_delay() {
        let cfg = DbConfig {
            io_hit_prob: 0.0,
            service_dist: crate::config::ServiceDist::Deterministic,
            ..DbConfig::default()
        };
        let (done, _) = run_batch(cfg, vec![QueryJob { id: 1, cost: 2 }], 7);
        // Each unit: 10ms CPU + 1 miss × 5ms IO = 15ms; two units = 30ms.
        assert_eq!(done[0].response(), SimTime::from_millis(30));
    }

    #[test]
    fn zero_cost_completes_instantly() {
        let (done, _) = run_batch(DbConfig::default(), vec![QueryJob { id: 1, cost: 0 }], 7);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].response(), SimTime::ZERO);
    }

    #[test]
    fn cpu_contention_stretches_response() {
        // 8 concurrent single-unit queries on 4 CPUs, no IO: the second
        // wave waits one full slice.
        let cfg = DbConfig {
            io_hit_prob: 1.0,
            service_dist: crate::config::ServiceDist::Deterministic,
            ..DbConfig::default()
        };
        let jobs: Vec<QueryJob> = (0..8).map(|i| QueryJob { id: i, cost: 1 }).collect();
        let (done, _) = run_batch(cfg, jobs, 7);
        assert_eq!(done.len(), 8);
        let mut responses: Vec<u64> = done
            .iter()
            .map(|c| c.response().as_millis_f64() as u64)
            .collect();
        responses.sort_unstable();
        assert_eq!(responses, vec![10, 10, 10, 10, 20, 20, 20, 20]);
    }

    #[test]
    fn gmpl_tracks_population() {
        let cfg = DbConfig {
            io_hit_prob: 1.0,
            service_dist: crate::config::ServiceDist::Deterministic,
            ..DbConfig::default()
        };
        let jobs: Vec<QueryJob> = (0..4).map(|i| QueryJob { id: i, cost: 2 }).collect();
        let (_, db) = run_batch(cfg, jobs, 7);
        // 4 queries run 0..20ms with no contention: mean Gmpl = 4.
        assert!(
            (db.mean_gmpl() - 4.0).abs() < 1e-6,
            "gmpl {}",
            db.mean_gmpl()
        );
    }

    #[test]
    #[should_panic(expected = "duplicate job id")]
    fn duplicate_ids_rejected() {
        let cfg = DbConfig::default();
        run_batch(
            cfg,
            vec![QueryJob { id: 1, cost: 2 }, QueryJob { id: 1, cost: 2 }],
            7,
        );
    }

    #[test]
    fn unit_time_statistics_accumulate() {
        let (done, db) = run_batch(
            DbConfig::default(),
            (0..20).map(|i| QueryJob { id: i, cost: 3 }).collect(),
            42,
        );
        assert_eq!(done.len(), 20);
        assert_eq!(db.units_done(), 60);
        assert_eq!(db.unit_times().count(), 60);
        assert_eq!(db.query_times().count(), 20);
        // Unit times at this load exceed the zero-load demand.
        assert!(db.unit_times().mean() * 1000.0 >= 10.0);
    }

    #[test]
    fn determinism_under_seed() {
        let jobs: Vec<QueryJob> = (0..10).map(|i| QueryJob { id: i, cost: 4 }).collect();
        let (a, _) = run_batch(DbConfig::default(), jobs.clone(), 9);
        let (b, _) = run_batch(DbConfig::default(), jobs.clone(), 9);
        let (c, _) = run_batch(DbConfig::default(), jobs, 10);
        assert_eq!(a, b, "same seed, same trajectory");
        assert_ne!(a, c, "different seed differs");
    }
}

//! Database simulation parameters (the last six rows of Table 1).

use desim::SimTime;
use serde::{Deserialize, Serialize};

/// Service-time distribution of the CPU and disk servers.
///
/// \[ACL87\]-style studies (and CSIM models generally) draw service
/// demands from a distribution; `Exponential` reproduces the smooth
/// load curve of the paper's Figure 9(a). `Deterministic` is useful in
/// tests that assert exact virtual timings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ServiceDist {
    /// Exponentially distributed service times with the configured mean.
    #[default]
    Exponential,
    /// Constant service times equal to the configured mean.
    Deterministic,
}

/// Physical parameters of the simulated database server.
///
/// Defaults reproduce Table 1 of the paper: 4 CPUs, 10 disks, one unit
/// of CPU cost and one IO page per unit of processing, 50% buffer hit
/// probability, 5 ms IO delay. `cpu_slice_ms` — the CPU service time of
/// one unit of CPU cost — is not listed in Table 1; 10 ms makes the
/// empirical `Db` function span the 10–100 ms range shown in Figure
/// 9(a) over Gmpl ∈ [1, 35].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DbConfig {
    /// Number of CPU servers (`num_CPUs`).
    pub num_cpus: usize,
    /// Number of disk servers (`num_disks`).
    pub num_disks: usize,
    /// Units of CPU consumed per unit of processing (`unit_CPU_cost`).
    pub unit_cpu_cost: u32,
    /// IO pages accessed per unit of processing (`unit_IO_cost`).
    pub unit_io_pages: u32,
    /// Probability an accessed page hits the buffer pool (`%IO_hit`).
    pub io_hit_prob: f64,
    /// Disk service time per page miss, in milliseconds (`IO_delay`).
    pub io_delay_ms: f64,
    /// CPU service time of one unit of CPU cost, in milliseconds.
    pub cpu_slice_ms: f64,
    /// Service-time distribution of CPUs and disks.
    pub service_dist: ServiceDist,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            num_cpus: 4,
            num_disks: 10,
            unit_cpu_cost: 1,
            unit_io_pages: 1,
            io_hit_prob: 0.5,
            io_delay_ms: 5.0,
            cpu_slice_ms: 10.0,
            service_dist: ServiceDist::Exponential,
        }
    }
}

impl DbConfig {
    /// CPU service time of one unit of processing.
    pub fn cpu_service(&self) -> SimTime {
        SimTime::from_millis_f64(self.cpu_slice_ms * self.unit_cpu_cost as f64)
    }

    /// Disk service time of one page miss.
    pub fn io_service(&self) -> SimTime {
        SimTime::from_millis_f64(self.io_delay_ms)
    }

    /// Expected service demand of one unit of processing, in
    /// milliseconds, at zero load (no queueing): CPU plus expected IO.
    pub fn unit_demand_ms(&self) -> f64 {
        self.cpu_slice_ms * self.unit_cpu_cost as f64
            + self.unit_io_pages as f64 * (1.0 - self.io_hit_prob) * self.io_delay_ms
    }

    /// Sanity-check parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cpus == 0 {
            return Err("num_cpus must be positive".into());
        }
        if self.num_disks == 0 {
            return Err("num_disks must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.io_hit_prob) {
            return Err(format!("io_hit_prob {} outside [0,1]", self.io_hit_prob));
        }
        if self.io_delay_ms < 0.0 || self.cpu_slice_ms <= 0.0 {
            return Err("service times must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = DbConfig::default();
        assert_eq!(c.num_cpus, 4);
        assert_eq!(c.num_disks, 10);
        assert_eq!(c.unit_cpu_cost, 1);
        assert_eq!(c.unit_io_pages, 1);
        assert!((c.io_hit_prob - 0.5).abs() < 1e-12);
        assert!((c.io_delay_ms - 5.0).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn unit_demand_is_cpu_plus_expected_io() {
        let c = DbConfig::default();
        // 10ms CPU + 1 page × 0.5 miss × 5ms = 12.5ms.
        assert!((c.unit_demand_ms() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn service_times() {
        let c = DbConfig::default();
        assert_eq!(c.cpu_service(), SimTime::from_millis(10));
        assert_eq!(c.io_service(), SimTime::from_millis(5));
    }

    #[test]
    fn validation_catches_bad_params() {
        let bad = |f: fn(&mut DbConfig)| {
            let mut c = DbConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.num_cpus = 0));
        assert!(bad(|c| c.io_hit_prob = 1.5));
        assert!(bad(|c| c.cpu_slice_ms = 0.0));
        assert!(bad(|c| c.num_disks = 0));
    }
}

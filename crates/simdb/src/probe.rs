//! Empirical measurement of the `Db` function (Figure 9(a)).
//!
//! `Db` maps the database's global multiprogramming level (Gmpl) to its
//! response time per *unit of processing*. The paper determines it
//! empirically for the experimental database; we do the same: for each
//! Gmpl level `N`, run a closed loop of `N` perpetual single-unit
//! queries and record the mean unit response time after warmup.

use desim::{Model, RunOutcome, Scheduler, SimTime, Simulation};

use crate::config::DbConfig;
use crate::db::{DbEvent, QueryJob, SimDb};

/// One measured point of the `Db` function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DbPoint {
    /// Global multiprogramming level during the measurement (held
    /// constant by the closed-loop probe; the time-averaged level for
    /// the open probe).
    pub gmpl: f64,
    /// Mean response time per unit of processing, in milliseconds.
    pub unit_time_ms: f64,
}

struct ClosedLoop {
    db: SimDb,
    level: u32,
    warmup_units: u64,
    measure_units: u64,
    next_id: u64,
    warmed_up: bool,
    done: bool,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Kick,
    Db(DbEvent),
}

impl Model for ClosedLoop {
    type Event = Ev;
    fn handle(&mut self, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Kick => {
                for _ in 0..self.level {
                    let job = QueryJob {
                        id: self.next_id,
                        cost: 1,
                    };
                    self.next_id += 1;
                    let c = self.db.submit(job, sched, &Ev::Db);
                    debug_assert!(c.is_none(), "unit queries are never free");
                }
            }
            Ev::Db(dbev) => {
                let completed = self.db.handle(dbev, sched, &Ev::Db);
                if let Some(_c) = completed {
                    if !self.warmed_up && self.db.units_done() >= self.warmup_units {
                        self.warmed_up = true;
                        self.db.reset_stats(sched.now());
                    } else if self.warmed_up && self.db.units_done() >= self.measure_units {
                        self.done = true;
                        sched.stop();
                        return;
                    }
                    // Keep the population constant: resubmit.
                    let job = QueryJob {
                        id: self.next_id,
                        cost: 1,
                    };
                    self.next_id += 1;
                    let c = self.db.submit(job, sched, &Ev::Db);
                    debug_assert!(c.is_none());
                }
            }
        }
    }
}

/// Measure one point of the `Db` function at multiprogramming level
/// `gmpl` (number of concurrent unit queries held in the system).
pub fn measure_point(cfg: DbConfig, gmpl: u32, seed: u64) -> DbPoint {
    assert!(gmpl > 0, "Gmpl must be at least 1");
    let per_level_units = 2_000u64.max(gmpl as u64 * 100);
    let mut sim = Simulation::new(ClosedLoop {
        db: SimDb::new(cfg, seed),
        level: gmpl,
        warmup_units: per_level_units / 5,
        measure_units: per_level_units,
        next_id: 0,
        warmed_up: false,
        done: false,
    });
    sim.prime(SimTime::ZERO, Ev::Kick);
    let outcome = sim.run();
    assert_eq!(outcome, RunOutcome::Stopped, "closed loop never drains");
    let model = sim.into_model();
    DbPoint {
        gmpl: gmpl as f64,
        unit_time_ms: model.db.unit_times().mean() * 1e3,
    }
}

struct OpenLoop {
    db: SimDb,
    rate_per_sec: f64,
    warmup_units: u64,
    measure_units: u64,
    next_id: u64,
    warmed_up: bool,
    rng: rand::rngs::StdRng,
}

#[derive(Clone, Copy, Debug)]
enum OpenEv {
    Arrive,
    Db(DbEvent),
}

impl Model for OpenLoop {
    type Event = OpenEv;
    fn handle(&mut self, ev: OpenEv, sched: &mut Scheduler<OpenEv>) {
        match ev {
            OpenEv::Arrive => {
                let job = QueryJob {
                    id: self.next_id,
                    cost: 1,
                };
                self.next_id += 1;
                let c = self.db.submit(job, sched, &OpenEv::Db);
                debug_assert!(c.is_none());
                let mean = SimTime::from_secs_f64(1.0 / self.rate_per_sec);
                let gap = desim::exp_time(&mut self.rng, mean);
                sched.schedule_in(gap, OpenEv::Arrive);
            }
            OpenEv::Db(dbev) => {
                if self.db.handle(dbev, sched, &OpenEv::Db).is_some() {
                    if !self.warmed_up && self.db.units_done() >= self.warmup_units {
                        self.warmed_up = true;
                        self.db.reset_stats(sched.now());
                    } else if self.warmed_up && self.db.units_done() >= self.measure_units {
                        sched.stop();
                    }
                }
            }
        }
    }
}

/// Measure one `Db` point under **open** Poisson arrivals of unit
/// queries at `rate_per_sec` units/second. The returned `gmpl` is the
/// time-averaged population, so the point is Little's-law consistent:
/// `gmpl = rate × unit_time`. Open calibration captures the queueing
/// fluctuations an open decision-flow load actually experiences, which
/// a constant-population probe understates.
pub fn measure_point_open(cfg: DbConfig, rate_per_sec: f64, seed: u64) -> DbPoint {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    use rand::SeedableRng;
    let units = 20_000u64;
    let mut sim = Simulation::new(OpenLoop {
        db: SimDb::new(cfg, seed),
        rate_per_sec,
        warmup_units: units / 5,
        measure_units: units,
        next_id: 0,
        warmed_up: false,
        rng: rand::rngs::StdRng::seed_from_u64(seed ^ 0x0F3A),
    });
    sim.prime(SimTime::ZERO, OpenEv::Arrive);
    let outcome = sim.run();
    assert_eq!(outcome, RunOutcome::Stopped, "open loop runs until quota");
    let model = sim.into_model();
    DbPoint {
        gmpl: model.db.mean_gmpl(),
        unit_time_ms: model.db.unit_times().mean() * 1e3,
    }
}

/// Measure the `Db` function under open Poisson unit arrivals over a
/// grid of offered loads (units/second).
pub fn measure_db_function_open(
    cfg: DbConfig,
    rates_per_sec: impl IntoIterator<Item = f64>,
    seed: u64,
) -> Vec<DbPoint> {
    rates_per_sec
        .into_iter()
        .enumerate()
        .map(|(i, r)| measure_point_open(cfg, r, seed.wrapping_add(i as u64)))
        .collect()
}

/// Measure the `Db` function over a range of Gmpl levels — the curve of
/// Figure 9(a).
pub fn measure_db_function(
    cfg: DbConfig,
    levels: impl IntoIterator<Item = u32>,
    seed: u64,
) -> Vec<DbPoint> {
    levels
        .into_iter()
        .map(|g| measure_point(cfg, g, seed.wrapping_add(g as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_load_matches_zero_load_demand() {
        let cfg = DbConfig::default();
        let p = measure_point(cfg, 1, 11);
        // One query alone: no queueing; unit time = 12.5ms ± stochastic
        // IO variation (hit/miss is random but mean is exact over many
        // units).
        assert!(
            (p.unit_time_ms - cfg.unit_demand_ms()).abs() < 1.5,
            "unit time {} vs demand {}",
            p.unit_time_ms,
            cfg.unit_demand_ms()
        );
    }

    #[test]
    fn db_function_is_increasing_in_load() {
        let cfg = DbConfig::default();
        let pts = measure_db_function(cfg, [1, 8, 16, 32], 3);
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(
                w[1].unit_time_ms > w[0].unit_time_ms * 0.95,
                "Db must be (weakly) increasing: {:?}",
                pts
            );
        }
        // Saturated regime: 32 queries on 4 CPUs ≈ 8 slices per unit.
        let hi = pts.last().unwrap();
        assert!(
            hi.unit_time_ms > 50.0,
            "expected heavy contention at Gmpl=32, got {}",
            hi.unit_time_ms
        );
    }

    #[test]
    fn figure_9a_shape_10_to_100_ms() {
        let cfg = DbConfig::default();
        let lo = measure_point(cfg, 1, 5);
        let hi = measure_point(cfg, 35, 5);
        assert!(lo.unit_time_ms >= 10.0 && lo.unit_time_ms <= 20.0, "{lo:?}");
        assert!(
            hi.unit_time_ms >= 70.0 && hi.unit_time_ms <= 130.0,
            "{hi:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_gmpl_rejected() {
        measure_point(DbConfig::default(), 0, 1);
    }
}

//! # simdb — a simulated database server
//!
//! Replaces the CSIM-18-based database simulation of Hull et al. (ICDE
//! 2000) §5: an \[ACL87\]-style physical model with a CPU pool, a disk
//! array, and a probabilistic buffer pool. Queries cost an integer
//! number of *units of processing*; each unit consumes one CPU slice
//! and accesses `unit_IO_pages` pages, missing the buffer with
//! probability `1 − %IO_hit` at `IO_delay` per miss.
//!
//! The defaults of [`DbConfig`] reproduce the simulation parameters of
//! the paper's Table 1. [`measure_db_function`] regenerates the
//! empirical `Db` curve of Figure 9(a): response time per unit of
//! processing as a function of the global multiprogramming level.
//!
//! ```
//! use simdb::{measure_point, DbConfig};
//!
//! let cfg = DbConfig::default();
//! let quiet = measure_point(cfg, 1, 42);
//! let busy = measure_point(cfg, 24, 42);
//! assert!(busy.unit_time_ms > quiet.unit_time_ms);
//! ```

#![warn(missing_docs)]

mod config;
mod db;
mod probe;

pub use config::{DbConfig, ServiceDist};
pub use db::{DbEvent, QueryCompletion, QueryJob, SimDb};
pub use probe::{
    measure_db_function, measure_db_function_open, measure_point, measure_point_open, DbPoint,
};

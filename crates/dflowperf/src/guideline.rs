//! Guideline maps (Figure 8): for a bound on Work, the minimum
//! achievable TimeInUnits and the execution program achieving it.
//!
//! A guideline map is built from a sweep of strategies over a schema
//! pattern: each strategy contributes a `(Work, TimeInUnits)` point;
//! the map is the lower envelope — "given a fixed amount of work that
//! can be performed, what is the best response time possible and how
//! can we obtain it?" (§4, Optimization Goals).

use decisionflow::engine::Strategy;
use serde::{Deserialize, Serialize};

/// One strategy's average performance on a pattern.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StrategyPoint {
    /// The execution program.
    pub strategy: Strategy,
    /// Mean work, units of processing per instance.
    pub work: f64,
    /// Mean response time, units of processing.
    pub time_units: f64,
}

/// The lower envelope of strategy points: minT as a function of the
/// Work budget.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GuidelineMap {
    /// Pareto frontier, sorted by ascending work; time strictly
    /// decreases along it.
    frontier: Vec<StrategyPoint>,
}

impl GuidelineMap {
    /// Build from an arbitrary set of measured strategy points.
    pub fn from_points(mut points: Vec<StrategyPoint>) -> GuidelineMap {
        points.retain(|p| p.work.is_finite() && p.time_units.is_finite());
        points.sort_by(|a, b| {
            a.work
                .partial_cmp(&b.work)
                .expect("finite")
                .then(a.time_units.partial_cmp(&b.time_units).expect("finite"))
        });
        let mut frontier: Vec<StrategyPoint> = Vec::new();
        for p in points {
            match frontier.last() {
                Some(last) if p.time_units >= last.time_units => {
                    // Dominated: costs more work, no faster.
                }
                _ => {
                    // Same work as the previous point? keep the faster.
                    if let Some(last) = frontier.last_mut() {
                        if (last.work - p.work).abs() < f64::EPSILON {
                            *last = p;
                            continue;
                        }
                    }
                    frontier.push(p);
                }
            }
        }
        GuidelineMap { frontier }
    }

    /// The Pareto frontier (ascending work, descending time).
    pub fn frontier(&self) -> &[StrategyPoint] {
        &self.frontier
    }

    /// Minimum achievable TimeInUnits within a Work budget, and the
    /// program achieving it. `None` when no strategy fits the budget
    /// ("no implementation can guarantee a work limit of 25 units with
    /// schemas of 8 rows", Figure 8(b)).
    pub fn min_time_for_work(&self, work_budget: f64) -> Option<StrategyPoint> {
        self.frontier
            .iter()
            .take_while(|p| p.work <= work_budget)
            .last()
            .copied()
    }
}

/// A tuning recommendation: the program minimizing *predicted*
/// TimeInSeconds at a target throughput (§5, second application of
/// Equation (6) — the procedure of Figure 9(b) graphs (a)–(c)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// The chosen program and its unit-time profile.
    pub point: StrategyPoint,
    /// Predicted response time, milliseconds.
    pub predicted_ms: f64,
    /// Unit time at the operating point, milliseconds.
    pub unit_time_ms: f64,
}

/// Combine a guideline map with the analytic model: for each frontier
/// program, solve the (Lmpl-corrected) Equation (6) and predict
/// `minT(W) × UnitTime(W)`; return the feasible minimum. `None` when
/// every frontier program saturates the database at `th_per_sec`.
pub fn recommend_program(
    db: &crate::DbFunction,
    map: &GuidelineMap,
    th_per_sec: f64,
) -> Option<Recommendation> {
    let mut best: Option<Recommendation> = None;
    for p in map.frontier() {
        let lmpl = (p.work / p.time_units).max(1.0);
        let Some(u) = crate::solve_unit_time_with_lmpl(db, th_per_sec, p.work, lmpl).stable_ms()
        else {
            continue;
        };
        let predicted = u * p.time_units;
        if best.as_ref().is_none_or(|b| predicted < b.predicted_ms) {
            best = Some(Recommendation {
                point: *p,
                predicted_ms: predicted,
                unit_time_ms: u,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(s: &str, work: f64, time: f64) -> StrategyPoint {
        StrategyPoint {
            strategy: s.parse().unwrap(),
            work,
            time_units: time,
        }
    }

    #[test]
    fn frontier_drops_dominated_points() {
        let map = GuidelineMap::from_points(vec![
            sp("PCE0", 40.0, 40.0),
            sp("PCE100", 42.0, 18.0),
            sp("PSE100", 55.0, 15.0),
            sp("NCE0", 60.0, 60.0),   // dominated: more work, slower
            sp("NSC100", 70.0, 16.0), // dominated by PSE100
        ]);
        let works: Vec<f64> = map.frontier().iter().map(|p| p.work).collect();
        assert_eq!(works, vec![40.0, 42.0, 55.0]);
        // Times strictly decrease along the frontier.
        let times: Vec<f64> = map.frontier().iter().map(|p| p.time_units).collect();
        assert!(times.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn budget_lookup_picks_best_affordable() {
        let map = GuidelineMap::from_points(vec![
            sp("PCE0", 40.0, 40.0),
            sp("PCE100", 42.0, 18.0),
            sp("PSE100", 55.0, 15.0),
        ]);
        assert_eq!(map.min_time_for_work(39.0), None, "nothing fits");
        let p = map.min_time_for_work(41.0).unwrap();
        assert_eq!(p.strategy.to_string(), "PCE0");
        let p = map.min_time_for_work(50.0).unwrap();
        assert_eq!(p.strategy.to_string(), "PCE100");
        let p = map.min_time_for_work(1000.0).unwrap();
        assert_eq!(p.strategy.to_string(), "PSE100");
        assert_eq!(p.time_units, 15.0);
    }

    #[test]
    fn equal_work_keeps_faster_point() {
        let map =
            GuidelineMap::from_points(vec![sp("PCE100", 40.0, 30.0), sp("PCC100", 40.0, 20.0)]);
        assert_eq!(map.frontier().len(), 1);
        assert_eq!(map.frontier()[0].time_units, 20.0);
        assert_eq!(map.frontier()[0].strategy.to_string(), "PCC100");
    }

    #[test]
    fn non_finite_points_are_dropped() {
        let map =
            GuidelineMap::from_points(vec![sp("PCE0", f64::NAN, 1.0), sp("PCE100", 10.0, 5.0)]);
        assert_eq!(map.frontier().len(), 1);
    }

    #[test]
    fn empty_map_returns_none() {
        let map = GuidelineMap::from_points(vec![]);
        assert!(map.frontier().is_empty());
        assert_eq!(map.min_time_for_work(100.0), None);
    }

    fn flat_db() -> crate::DbFunction {
        crate::DbFunction::from_points(&[
            simdb::DbPoint {
                gmpl: 1.0,
                unit_time_ms: 10.0,
            },
            simdb::DbPoint {
                gmpl: 10.0,
                unit_time_ms: 10.0,
            },
            simdb::DbPoint {
                gmpl: 30.0,
                unit_time_ms: 30.0,
            },
        ])
    }

    #[test]
    fn recommendation_prefers_time_at_light_load() {
        // Flat Db at light load: prediction ∝ minT, so the fastest
        // frontier program wins regardless of its extra work.
        let map = GuidelineMap::from_points(vec![
            sp("PCE0", 40.0, 40.0),
            sp("PCE100", 42.0, 18.0),
            sp("PSE100", 55.0, 15.0),
        ]);
        let r = recommend_program(&flat_db(), &map, 0.1).unwrap();
        assert_eq!(r.point.strategy.to_string(), "PSE100");
        assert!((r.predicted_ms - 150.0).abs() < 1.0);
    }

    #[test]
    fn recommendation_avoids_saturating_programs() {
        // At a throughput where only the small-work program is stable,
        // the recommendation must fall back to it.
        let db = crate::DbFunction::from_points(&[
            simdb::DbPoint {
                gmpl: 1.0,
                unit_time_ms: 10.0,
            },
            simdb::DbPoint {
                gmpl: 2.0,
                unit_time_ms: 40.0,
            }, // steep
        ]);
        let map = GuidelineMap::from_points(vec![sp("PCE0", 3.0, 3.0), sp("PSE100", 500.0, 1.0)]);
        let r = recommend_program(&db, &map, 2.0).unwrap();
        assert_eq!(r.point.strategy.to_string(), "PCE0");
        // And when nothing is feasible: None.
        assert!(recommend_program(&db, &map, 10_000.0).is_none());
    }
}

//! Unit-time experiment sweeps — now sugar over the unified
//! [`Workload`] surface.
//!
//! The paper's Figures 5–8 plot per-strategy averages over generated
//! schemas of a given pattern. A sweep is
//! `Workload::from_pattern(params, reps, base_seed)` run on the
//! oracle-checked [`UnitTime`] backend.

use decisionflow::engine::{RuntimeOptions, Strategy};
use dflowgen::PatternParams;

use crate::guideline::GuidelineMap;
use crate::workload::{LoadReport, UnitTime, Workload};

/// The oracle-checked unit-time sweep behind every figure: `reps`
/// flows of `params` (seeds `base_seed..base_seed+reps`), each run
/// once under `strategy` and verified against the declarative
/// snapshot.
pub fn pattern_sweep(
    params: PatternParams,
    strategy: Strategy,
    reps: u32,
    base_seed: u64,
) -> LoadReport {
    pattern_sweep_with_options(params, strategy, reps, base_seed, RuntimeOptions::default())
}

/// [`pattern_sweep`] with engine ablation [`RuntimeOptions`] (e.g.
/// backward propagation disabled).
pub fn pattern_sweep_with_options(
    params: PatternParams,
    strategy: Strategy,
    reps: u32,
    base_seed: u64,
    options: RuntimeOptions,
) -> LoadReport {
    assert!(reps > 0, "at least one replication");
    Workload::from_pattern(params, reps, base_seed)
        .strategy(strategy)
        .options(options)
        .run(&UnitTime::checked())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Build the guideline map of a pattern (Figure 8) from a strategy set.
pub fn guideline_for_pattern(
    params: PatternParams,
    strategies: &[Strategy],
    reps: u32,
    base_seed: u64,
) -> GuidelineMap {
    let points = strategies
        .iter()
        .map(|&s| pattern_sweep(params, s, reps, base_seed).point())
        .collect();
    GuidelineMap::from_points(points)
}

/// The paper's canonical strategy portfolio for guideline maps:
/// sequential PCE0 plus every P-option program at the given parallelism
/// levels.
pub fn portfolio(levels: &[u8]) -> Vec<Strategy> {
    let mut out = vec![Strategy::pce0()];
    for &p in levels {
        for spec in [false, true] {
            for heur in ["E", "C"] {
                let s: Strategy = format!("P{}{}{}", if spec { 'S' } else { 'C' }, heur, p)
                    .parse()
                    .expect("well-formed strategy string");
                out.push(s);
            }
        }
    }
    out.sort_by_key(|s| s.to_string());
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PatternParams {
        PatternParams {
            nb_nodes: 16,
            nb_rows: 4,
            pct_enabled: 50,
            ..Default::default()
        }
    }

    fn sweep(params: PatternParams, s: &str) -> LoadReport {
        pattern_sweep(params, s.parse().unwrap(), 10, 7)
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = sweep(small(), "PCE0");
        let b = sweep(small(), "PCE0");
        assert_eq!(a.mean_work(), b.mean_work());
        assert_eq!(a.mean_response(), b.mean_response());
        assert_eq!(a.percentiles, b.percentiles);
    }

    #[test]
    fn propagation_never_does_more_work_sequentially() {
        let p = sweep(small(), "PCE0");
        let n = sweep(small(), "NCE0");
        assert!(
            p.mean_work() <= n.mean_work() + 1e-9,
            "P work {} must not exceed N work {}",
            p.mean_work(),
            n.mean_work()
        );
        assert!(
            p.mean_unneeded() > 0.0,
            "pruning should fire at 50% enabled"
        );
    }

    #[test]
    fn parallelism_reduces_time_not_work_conservative() {
        let seq = sweep(small(), "PCE0");
        let par = sweep(small(), "PCE100");
        assert!(par.mean_response() < seq.mean_response());
        assert!(
            (par.mean_work() - seq.mean_work()).abs() < 3.0,
            "conservative parallelism leaves work nearly unchanged: {} vs {}",
            par.mean_work(),
            seq.mean_work()
        );
    }

    #[test]
    fn speculation_adds_work() {
        let cons = sweep(small(), "PCE100");
        let spec = sweep(small(), "PSE100");
        assert!(spec.mean_work() >= cons.mean_work());
        assert!(spec.mean_response() <= cons.mean_response() + 1e-9);
        assert!(
            spec.mean_wasted() > 0.0,
            "at 50% enabled some speculation wastes"
        );
    }

    #[test]
    fn guideline_map_has_nonempty_frontier() {
        let map = guideline_for_pattern(small(), &portfolio(&[100]), 5, 11);
        assert!(!map.frontier().is_empty());
        // The cheapest-work point is the sequential conservative one.
        let first = map.frontier()[0];
        assert!(!first.strategy.speculative);
    }

    #[test]
    fn portfolio_contains_canonical_programs() {
        let p = portfolio(&[40, 100]);
        let names: Vec<String> = p.iter().map(|s| s.to_string()).collect();
        for expect in ["PCE0", "PCE40", "PSC100", "PSE100", "PCC40"] {
            assert!(names.contains(&expect.to_string()), "missing {expect}");
        }
        // No duplicates.
        let mut sorted = names.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}

//! Unit-time experiment sweeps: average Work and TimeInUnits of a
//! strategy over replicated schema patterns.
//!
//! The paper's Figures 5–8 plot per-strategy averages over generated
//! schemas of a given pattern. A sweep generates `reps` flows (seeds
//! `base_seed..base_seed+reps`), runs each under the strategy with the
//! infinite-resource unit-time executor, and averages.

use decisionflow::engine::{run_unit_time_with_options, RuntimeOptions, Strategy};
use decisionflow::snapshot::complete_snapshot;
use dflowgen::{generate, PatternParams};
use serde::{Deserialize, Serialize};

use crate::guideline::{GuidelineMap, StrategyPoint};

/// Averaged outcome of one (pattern, strategy) cell.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// The strategy measured.
    pub strategy: Strategy,
    /// Mean Work (units of processing per instance).
    pub mean_work: f64,
    /// Mean TimeInUnits.
    pub mean_time: f64,
    /// Mean wasted work (speculation discarded), units.
    pub mean_wasted: f64,
    /// Mean number of attributes detected unneeded.
    pub mean_unneeded: f64,
    /// Replications.
    pub reps: u32,
}

impl SweepResult {
    /// Convert to a guideline-map point.
    pub fn point(&self) -> StrategyPoint {
        StrategyPoint {
            strategy: self.strategy,
            work: self.mean_work,
            time_units: self.mean_time,
        }
    }
}

/// Run one (pattern, strategy) cell over `reps` replicated flows.
///
/// Every execution is checked against the declarative oracle — a sweep
/// whose engine diverges from the complete snapshot panics, so the
/// performance numbers in every figure are backed by verified-correct
/// runs.
pub fn unit_sweep(
    params: PatternParams,
    strategy: Strategy,
    reps: u32,
    base_seed: u64,
) -> SweepResult {
    unit_sweep_with_options(params, strategy, reps, base_seed, RuntimeOptions::default())
}

/// [`unit_sweep`] with engine ablation options (e.g. backward
/// propagation disabled).
pub fn unit_sweep_with_options(
    params: PatternParams,
    strategy: Strategy,
    reps: u32,
    base_seed: u64,
    options: RuntimeOptions,
) -> SweepResult {
    assert!(reps > 0, "at least one replication");
    let mut work = 0.0;
    let mut time = 0.0;
    let mut wasted = 0.0;
    let mut unneeded = 0.0;
    for i in 0..reps {
        let flow = generate(params, base_seed + i as u64).expect("valid pattern");
        let out = run_unit_time_with_options(&flow.schema, strategy, &flow.sources, options)
            .expect("engine progress");
        let snap = complete_snapshot(&flow.schema, &flow.sources).expect("oracle");
        assert!(
            out.runtime.agrees_with(&snap),
            "strategy {strategy} diverged from declarative semantics on seed {}",
            base_seed + i as u64
        );
        work += out.metrics.work as f64;
        time += out.time_units as f64;
        wasted += out.metrics.wasted_work as f64;
        unneeded += out.metrics.unneeded_detected as f64;
    }
    let n = reps as f64;
    SweepResult {
        strategy,
        mean_work: work / n,
        mean_time: time / n,
        mean_wasted: wasted / n,
        mean_unneeded: unneeded / n,
        reps,
    }
}

/// Build the guideline map of a pattern (Figure 8) from a strategy set.
pub fn guideline_for_pattern(
    params: PatternParams,
    strategies: &[Strategy],
    reps: u32,
    base_seed: u64,
) -> GuidelineMap {
    let points = strategies
        .iter()
        .map(|&s| unit_sweep(params, s, reps, base_seed).point())
        .collect();
    GuidelineMap::from_points(points)
}

/// The paper's canonical strategy portfolio for guideline maps:
/// sequential PCE0 plus every P-option program at the given parallelism
/// levels.
pub fn portfolio(levels: &[u8]) -> Vec<Strategy> {
    let mut out = vec![Strategy::pce0()];
    for &p in levels {
        for spec in [false, true] {
            for heur in ["E", "C"] {
                let s: Strategy = format!("P{}{}{}", if spec { 'S' } else { 'C' }, heur, p)
                    .parse()
                    .expect("well-formed strategy string");
                out.push(s);
            }
        }
    }
    out.sort_by_key(|s| s.to_string());
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PatternParams {
        PatternParams {
            nb_nodes: 16,
            nb_rows: 4,
            pct_enabled: 50,
            ..Default::default()
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let s: Strategy = "PCE0".parse().unwrap();
        let a = unit_sweep(small(), s, 5, 100);
        let b = unit_sweep(small(), s, 5, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn propagation_never_does_more_work_sequentially() {
        let p = unit_sweep(small(), "PCE0".parse().unwrap(), 10, 7);
        let n = unit_sweep(small(), "NCE0".parse().unwrap(), 10, 7);
        assert!(
            p.mean_work <= n.mean_work + 1e-9,
            "P work {} must not exceed N work {}",
            p.mean_work,
            n.mean_work
        );
        assert!(p.mean_unneeded > 0.0, "pruning should fire at 50% enabled");
    }

    #[test]
    fn parallelism_reduces_time_not_work_conservative() {
        let seq = unit_sweep(small(), "PCE0".parse().unwrap(), 10, 7);
        let par = unit_sweep(small(), "PCE100".parse().unwrap(), 10, 7);
        assert!(par.mean_time < seq.mean_time);
        assert!(
            (par.mean_work - seq.mean_work).abs() < 3.0,
            "conservative parallelism leaves work nearly unchanged: {} vs {}",
            par.mean_work,
            seq.mean_work
        );
    }

    #[test]
    fn speculation_adds_work() {
        let cons = unit_sweep(small(), "PCE100".parse().unwrap(), 10, 7);
        let spec = unit_sweep(small(), "PSE100".parse().unwrap(), 10, 7);
        assert!(spec.mean_work >= cons.mean_work);
        assert!(spec.mean_time <= cons.mean_time + 1e-9);
        assert!(
            spec.mean_wasted > 0.0,
            "at 50% enabled some speculation wastes"
        );
    }

    #[test]
    fn guideline_map_has_nonempty_frontier() {
        let map = guideline_for_pattern(small(), &portfolio(&[100]), 5, 11);
        assert!(!map.frontier().is_empty());
        // The cheapest-work point is the sequential conservative one.
        let first = map.frontier()[0];
        assert!(!first.strategy.speculative);
    }

    #[test]
    fn portfolio_contains_canonical_programs() {
        let p = portfolio(&[40, 100]);
        let names: Vec<String> = p.iter().map(|s| s.to_string()).collect();
        for expect in ["PCE0", "PCE40", "PSC100", "PSE100", "PCC40"] {
            assert!(names.contains(&expect.to_string()), "missing {expect}");
        }
        // No duplicates.
        let mut sorted = names.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}

//! The analytical model for finite database resources (§5, Equations
//! 1–6).
//!
//! Variables (per the paper): `Th` throughput (instances/second),
//! `Work` units of processing per instance, `Lmpl` average per-instance
//! multiprogramming level, `Impl` instances in process, `Gmpl` global
//! multiprogramming level, `UnitTime` seconds per unit of processing,
//! `Db` the empirical load curve. The equations in stable state:
//!
//! ```text
//! (1) UnitTime       = Db(Gmpl)
//! (2) Impl           = Th × TimeInSeconds            (Little's law, instances)
//! (3) TimeInSeconds  = TimeInUnits × UnitTime
//! (4) TimeInUnits    = Work / Lmpl
//! (5) Gmpl           = Impl × Lmpl
//!                    = Th × TimeInUnits × UnitTime × Lmpl
//!                    = Th × Work × UnitTime
//! (6) UnitTime       = Db(Th × Work × UnitTime)
//! ```
//!
//! Equation (6) is a one-dimensional fixed point in `UnitTime`. Because
//! `Db` is non-decreasing, the map `u ↦ Db(Th·Work·u)` is monotone; a
//! solution exists iff the curve crosses the identity before the
//! database saturates. Two applications (the paper's "Prescriptions for
//! Tuning"):
//!
//! 1. **max work bound** — the largest `Work` for which (6) has a
//!    solution at a target `Th`;
//! 2. **program choice** — combine the guideline map `minT(Work)` with
//!    `UnitTime(Work)` to predict `TimeInSeconds = minT(W) × UnitTime(W)`
//!    and pick the `W` (and its strategy) minimizing it (Figure 9(b)).
//!
//! The model's `TimeInSeconds` in Equation (3) is the *execution*
//! component of response time; the real server's runtime telemetry
//! measures the same decomposition empirically. A
//! [`crate::workload::Server`] run embeds a
//! `decisionflow::telemetry::TelemetrySnapshot` in its
//! [`ServerSideStats`](crate::workload::ServerSideStats): the `execute`
//! stage histogram is the measured counterpart of Equation (3), and
//! `queue_wait` is the backlog term the infinite-resource model omits —
//! comparing their percentiles against the `e2e` histogram shows
//! directly whether a saturating run is execution-bound (UnitTime
//! inflation, Equation 1) or queueing-bound.

use crate::dbfunc::DbFunction;

/// Solver outcome for Equation (6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UnitTimeSolution {
    /// A stable operating point exists: UnitTime in milliseconds.
    Stable(f64),
    /// No fixed point: the offered load saturates the database.
    Saturated,
}

impl UnitTimeSolution {
    /// The stable unit time, if any.
    pub fn stable_ms(self) -> Option<f64> {
        match self {
            UnitTimeSolution::Stable(ms) => Some(ms),
            UnitTimeSolution::Saturated => None,
        }
    }
}

/// Solve Equation (6): `UnitTime = Db(Th · Work · UnitTime)` for the
/// given throughput (instances/second) and per-instance work (units).
///
/// `th_per_sec × work` is the offered load in units/second; multiplied
/// by the unit time in *seconds* it yields Gmpl.
pub fn solve_unit_time(db: &DbFunction, th_per_sec: f64, work: f64) -> UnitTimeSolution {
    assert!(th_per_sec >= 0.0 && work >= 0.0, "negative load");
    let load = th_per_sec * work; // units per second
    if load == 0.0 {
        return UnitTimeSolution::Stable(db.unit_time_ms(0.0));
    }
    // g(u) = Db(load · u / 1000) − u   (u in ms). g(0) = Db(0) > 0.
    // Monotone Db ⇒ g has at most one sign change. Search for an upper
    // bracket, then bisect.
    let g = |u: f64| db.unit_time_ms(load * u / 1000.0) - u;
    let mut hi = db.unit_time_ms(0.0).max(1.0);
    let mut found = false;
    for _ in 0..64 {
        if g(hi) < 0.0 {
            found = true;
            break;
        }
        hi *= 2.0;
        if hi > 1e9 {
            break;
        }
    }
    if !found {
        return UnitTimeSolution::Saturated;
    }
    let mut lo = 0.0f64;
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if g(mid) >= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    UnitTimeSolution::Stable(0.5 * (lo + hi))
}

/// Equation (6) with a burstiness correction (this repo's extension).
///
/// The plain fixed point evaluates `Db` at the *time-averaged* Gmpl,
/// but the units of one instance execute together: a unit's perceived
/// multiprogramming level is the background average **plus its own
/// instance's siblings**. Modelling the system as compound-Poisson
/// (instances ~ Poisson, each contributing `Lmpl` concurrent units),
/// the size-biased population seen by a unit is `E[G²]/E[G] = Gmpl +
/// Lmpl`. The calibration workload (`Lmpl = 1`) already embeds the
/// "+1" of a unit seeing itself, so the corrected fixed point is
///
/// ```text
/// UnitTime = Db(Th · Work · UnitTime + (Lmpl − 1))
/// ```
///
/// which degenerates to Equation (6) exactly when `Lmpl = 1`
/// (sequential programs). `Lmpl = Work / TimeInUnits` per Equation (4).
pub fn solve_unit_time_with_lmpl(
    db: &DbFunction,
    th_per_sec: f64,
    work: f64,
    lmpl: f64,
) -> UnitTimeSolution {
    assert!(lmpl >= 1.0, "Lmpl is at least one task in flight");
    let load = th_per_sec * work;
    let shift = lmpl - 1.0;
    let g = |u: f64| db.unit_time_ms(load * u / 1000.0 + shift) - u;
    let mut hi = db.unit_time_ms(shift).max(1.0);
    let mut found = false;
    for _ in 0..64 {
        if g(hi) < 0.0 {
            found = true;
            break;
        }
        hi *= 2.0;
        if hi > 1e9 {
            break;
        }
    }
    if !found {
        return UnitTimeSolution::Saturated;
    }
    let mut lo = 0.0f64;
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if g(mid) >= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    UnitTimeSolution::Stable(0.5 * (lo + hi))
}

/// The paper's first prescription: the maximum Work (units per
/// instance) the database can afford at throughput `th_per_sec` —
/// the largest `W` for which Equation (6) still has a solution.
pub fn max_work_for_throughput(db: &DbFunction, th_per_sec: f64, limit: u64) -> u64 {
    let mut lo = 0u64; // always feasible (zero work)
    let mut hi = limit;
    if solve_unit_time(db, th_per_sec, hi as f64)
        .stable_ms()
        .is_some()
    {
        return hi;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        match solve_unit_time(db, th_per_sec, mid as f64) {
            UnitTimeSolution::Stable(_) => lo = mid,
            UnitTimeSolution::Saturated => hi = mid,
        }
    }
    lo
}

/// Predicted per-instance response time (Equation 3): `TimeInUnits ×
/// UnitTime`, in milliseconds. `None` when the load saturates.
pub fn predict_response_ms(
    db: &DbFunction,
    th_per_sec: f64,
    work: f64,
    time_in_units: f64,
) -> Option<f64> {
    solve_unit_time(db, th_per_sec, work)
        .stable_ms()
        .map(|u| u * time_in_units)
}

/// Implied Gmpl at the stable operating point (Equation 5).
pub fn stable_gmpl(db: &DbFunction, th_per_sec: f64, work: f64) -> Option<f64> {
    solve_unit_time(db, th_per_sec, work)
        .stable_ms()
        .map(|u| th_per_sec * work * u / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simdb::DbPoint;

    /// Db: flat 10ms up to gmpl 4, then +1ms per extra gmpl.
    fn db() -> DbFunction {
        DbFunction::from_points(&[
            DbPoint {
                gmpl: 1.0,
                unit_time_ms: 10.0,
            },
            DbPoint {
                gmpl: 4.0,
                unit_time_ms: 10.0,
            },
            DbPoint {
                gmpl: 24.0,
                unit_time_ms: 30.0,
            },
        ])
    }

    #[test]
    fn zero_load_returns_base_unit_time() {
        let s = solve_unit_time(&db(), 0.0, 100.0);
        assert_eq!(s, UnitTimeSolution::Stable(10.0));
        let s = solve_unit_time(&db(), 10.0, 0.0);
        assert_eq!(s, UnitTimeSolution::Stable(10.0));
    }

    #[test]
    fn light_load_sits_on_flat_region() {
        // load = 2 inst/s × 100 units = 200 units/s; u = 10ms ⇒ gmpl = 2
        // — inside the flat region, so u = 10ms is the fixed point.
        let s = solve_unit_time(&db(), 2.0, 100.0);
        let u = s.stable_ms().unwrap();
        assert!((u - 10.0).abs() < 1e-6, "u = {u}");
        let g = stable_gmpl(&db(), 2.0, 100.0).unwrap();
        assert!((g - 2.0).abs() < 1e-3);
    }

    #[test]
    fn moderate_load_climbs_the_curve() {
        // load = 10 × 60 = 600 units/s. Fixed point on the sloped
        // region Db(g) = g + 6: u = 0.6u + 6 ⇒ u = 15, gmpl = 9.
        let u = solve_unit_time(&db(), 10.0, 60.0).stable_ms().unwrap();
        assert!((u - 15.0).abs() < 1e-4, "u = {u}");
        let g = 10.0 * 60.0 * u / 1000.0;
        let expect = db().unit_time_ms(g);
        assert!(
            (u - expect).abs() < 1e-6,
            "fixed point property: {u} vs {expect}"
        );
        assert!(u > 10.0, "queueing must raise unit time");
        assert!((stable_gmpl(&db(), 10.0, 60.0).unwrap() - 9.0).abs() < 1e-3);
    }

    #[test]
    fn heavy_load_saturates() {
        // Db slope is 1 ms per gmpl; offered load 2000 units/s means
        // the map u ↦ Db(2u) has slope 2 > 1 everywhere: no crossing.
        let s = solve_unit_time(&db(), 20.0, 100.0);
        assert_eq!(s, UnitTimeSolution::Saturated);
        assert_eq!(s.stable_ms(), None);
    }

    #[test]
    fn max_work_is_monotone_in_throughput() {
        let d = db();
        let w10 = max_work_for_throughput(&d, 10.0, 10_000);
        let w20 = max_work_for_throughput(&d, 20.0, 10_000);
        let w40 = max_work_for_throughput(&d, 40.0, 10_000);
        assert!(w10 >= w20 && w20 >= w40, "{w10} {w20} {w40}");
        assert!(w40 > 0);
        // Feasibility boundary is tight: w10 is feasible, w10+1 is not.
        assert!(solve_unit_time(&d, 10.0, w10 as f64).stable_ms().is_some());
        assert!(solve_unit_time(&d, 10.0, (w10 + 1) as f64)
            .stable_ms()
            .is_none());
    }

    #[test]
    fn max_work_hits_limit_when_everything_feasible() {
        let flat = DbFunction::from_points(&[DbPoint {
            gmpl: 1.0,
            unit_time_ms: 10.0,
        }]);
        // Flat Db never saturates.
        assert_eq!(max_work_for_throughput(&flat, 100.0, 500), 500);
    }

    #[test]
    fn lmpl_correction_degenerates_at_one() {
        let d = db();
        let plain = solve_unit_time(&d, 10.0, 60.0).stable_ms().unwrap();
        let corr = solve_unit_time_with_lmpl(&d, 10.0, 60.0, 1.0)
            .stable_ms()
            .unwrap();
        assert!((plain - corr).abs() < 1e-6);
    }

    #[test]
    fn lmpl_correction_raises_unit_time() {
        let d = db();
        let plain = solve_unit_time(&d, 10.0, 60.0).stable_ms().unwrap();
        let corr = solve_unit_time_with_lmpl(&d, 10.0, 60.0, 5.0)
            .stable_ms()
            .unwrap();
        assert!(corr > plain, "bursty instances see more contention");
    }

    #[test]
    fn predicted_response_combines_unit_time_and_units() {
        let d = db();
        let r = predict_response_ms(&d, 2.0, 100.0, 30.0).unwrap();
        // unit time 10ms × 30 units = 300ms.
        assert!((r - 300.0).abs() < 1e-3);
        assert!(predict_response_ms(&d, 20.0, 100.0, 30.0).is_none());
    }
}

//! The unified load-generation surface: one [`Workload`] in, one
//! [`LoadReport`] out, whatever executes it.
//!
//! Before this layer existed the crate had grown one driver per
//! execution setting — `unit_sweep` (infinite-resource unit time),
//! `run_open_load` (Poisson arrivals over the simulated database),
//! `run_server_load` (closed waves against the real sharded server) —
//! each with its own config struct, its own outcome struct, and its
//! own defaults. The paper's experimental grid is *workload shapes ×
//! execution settings*, so the API now says exactly that:
//!
//! * [`Workload`] — a builder carrying the flows, the [`Arrival`]
//!   process (closed-loop waves or an open Poisson stream), the
//!   [`Strategy`], instance/warmup counts, the RNG seed, an optional
//!   per-instance completion [`deadline`](Workload::deadline), and
//!   engine ablation options;
//! * [`Backend`] — the pluggable execution setting:
//!   * [`UnitTime`] — the in-process infinite-resource executor on a
//!     virtual unit clock (Figures 5–8);
//!   * [`SimDb`] — desim + the finite-resource simulated database,
//!     with an optional shared query cache (Figure 9(b));
//!   * [`Server`] — the real sharded [`EngineServer`], closed waves
//!     of batched submissions *or* an open Poisson pacing loop that
//!     reacts to [`ServerEvents`] completions and accounts late drops
//!     via `Request::deadline`;
//! * [`LoadReport`] — the one outcome shape: throughput, latency
//!   tallies and percentiles, per-phase counts, late-drop/abandon
//!   accounting, and backend extras (database stats, per-shard server
//!   stats).
//!
//! Every backend preserves the accounting identity
//! `submitted == completed + late_dropped + abandoned`.
//!
//! ```
//! use dflowperf::{Arrival, UnitTime, Workload};
//! use dflowgen::{generate, PatternParams};
//!
//! let params = PatternParams { nb_nodes: 16, nb_rows: 4, pct_enabled: 50, ..Default::default() };
//! let report = Workload::from_pattern(params, 5, 100)
//!     .strategy("PCE100".parse().unwrap())
//!     .run(&UnitTime::checked())
//!     .unwrap();
//! assert_eq!(report.completed, 5);
//! assert!(report.mean_work() > 0.0);
//! ```
//!
//! [`EngineServer`]: decisionflow::server::EngineServer
//! [`ServerEvents`]: decisionflow::api::ServerEvents

use std::collections::HashMap;
use std::time::{Duration, Instant};

use decisionflow::api::Request;
use decisionflow::engine::{scheduler, InstanceRuntime, RuntimeOptions, ServerStats, Strategy};
use decisionflow::schema::AttrId;
use decisionflow::server::{EngineServer, ServerBuildError};
use decisionflow::snapshot::complete_snapshot;
use decisionflow::telemetry::TelemetrySnapshot;
use decisionflow::value::Value;
use desim::{exp_time, Model, Scheduler, SimTime, Simulation, Tally};
use dflowgen::{generate, GeneratedFlow, PatternParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simdb::{DbConfig, DbEvent, QueryJob, SimDb as SimDbServer};

use crate::guideline::StrategyPoint;

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// How instances enter the system.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Arrival {
    /// Closed loop: `clients` instances are submitted together and the
    /// wave is awaited before the next one starts, for `waves` waves
    /// (total `clients × waves` instances unless
    /// [`Workload::instances`] overrides the total).
    Closed {
        /// Instances in flight per wave.
        clients: usize,
        /// Number of waves (ignored when an explicit instance total is
        /// set; the run then takes `ceil(total / clients)` waves, the
        /// last one partial).
        waves: usize,
    },
    /// Open loop: instances arrive in a Poisson stream at `rate` per
    /// second (virtual seconds on [`SimDb`], wall-clock seconds on
    /// [`Server`]), regardless of how many are still in flight —
    /// the paper's §5 setting, where saturation curves emerge.
    Poisson {
        /// Mean arrival rate, instances per second.
        rate: f64,
    },
    /// Closed-loop **resubmission** traffic — the incremental-
    /// recomputation axis. Wave 0 submits every client's instance cold
    /// under a stable per-client label (seeding the server's snapshot
    /// store); each later wave resubmits the same labels with `churn`
    /// source attributes rebound (numeric values perturbed
    /// deterministically per wave). A resubmission is a **delta**
    /// ([`Request::delta_by_label`]) with probability `delta_rate`,
    /// otherwise an identical full cold rerun — so sweeping
    /// `delta_rate` from 0 to 1 on the same workload measures the
    /// delta win directly. Server backends only ([`Server`] /
    /// [`OnServer`]): [`UnitTime`] and [`SimDb`] have no snapshot
    /// store to resubmit against.
    Resubmission {
        /// Returning clients; each keeps one label (and one flow
        /// replica) for the whole run.
        clients: usize,
        /// Total waves, the cold seeding wave included.
        waves: usize,
        /// Probability that a resubmission rides the delta path
        /// instead of rerunning cold. Must be in `[0, 1]`.
        delta_rate: f64,
        /// Source attributes rebound per resubmission (clamped to the
        /// flow's source count; generated patterns have exactly one
        /// source, so `0` means "nothing changed" and `1` invalidates
        /// the full cone below the source).
        churn: usize,
    },
}

/// One load-generation experiment: which flows, how they arrive, under
/// which strategy — executed by any [`Backend`].
///
/// Instance `i` of the run uses flow replica `i % flows.len()`
/// (round-robin), exactly as the legacy drivers did.
#[derive(Clone)]
pub struct Workload {
    flows: Vec<GeneratedFlow>,
    arrival: Arrival,
    strategy: Option<Strategy>,
    options: RuntimeOptions,
    instances: Option<usize>,
    warmup: usize,
    seed: u64,
    deadline: Option<Duration>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("flows", &self.flows.len())
            .field("arrival", &self.arrival)
            .field("strategy", &self.strategy)
            .field("instances", &self.instances)
            .field("warmup", &self.warmup)
            .field("seed", &self.seed)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

impl Workload {
    /// A workload over the given flow replicas. Defaults: one client
    /// closed loop (set [`arrivals`](Workload::arrivals) or
    /// [`instances`](Workload::instances)), no warmup, seed 1, no
    /// deadline. [`strategy`](Workload::strategy) is required.
    pub fn new(flows: impl Into<Vec<GeneratedFlow>>) -> Workload {
        Workload {
            flows: flows.into(),
            arrival: Arrival::Closed {
                clients: 1,
                waves: 0,
            },
            strategy: None,
            options: RuntimeOptions::default(),
            instances: None,
            warmup: 0,
            seed: 1,
            deadline: None,
        }
    }

    /// Sweep convenience: generate `reps` flows of `params` (seeds
    /// `base_seed..base_seed+reps`) and run each once, sequentially —
    /// the shape [`pattern_sweep`](crate::pattern_sweep) builds on.
    pub fn from_pattern(params: PatternParams, reps: u32, base_seed: u64) -> Workload {
        let flows: Vec<GeneratedFlow> = (0..reps)
            .map(|i| generate(params, base_seed + u64::from(i)).expect("valid pattern"))
            .collect();
        let n = flows.len();
        Workload::new(flows).arrivals(Arrival::Closed {
            clients: 1,
            waves: n,
        })
    }

    /// Set the arrival process.
    pub fn arrivals(mut self, arrival: Arrival) -> Workload {
        self.arrival = arrival;
        self
    }

    /// Set the execution strategy (required).
    pub fn strategy(mut self, strategy: Strategy) -> Workload {
        self.strategy = Some(strategy);
        self
    }

    /// Set engine ablation [`RuntimeOptions`].
    pub fn options(mut self, options: RuntimeOptions) -> Workload {
        self.options = options;
        self
    }

    /// Set the total number of instances explicitly. Required for
    /// [`Arrival::Poisson`]; for [`Arrival::Closed`] it overrides
    /// `clients × waves` (the run then takes as many waves as needed,
    /// the last one partial).
    pub fn instances(mut self, total: usize) -> Workload {
        self.instances = Some(total);
        self
    }

    /// Exclude the first `warmup` instances (by arrival order) from
    /// latency/work statistics and the throughput window.
    pub fn warmup(mut self, warmup: usize) -> Workload {
        self.warmup = warmup;
        self
    }

    /// Seed for every stochastic choice the run makes (arrival gaps,
    /// database service fluctuations). Two runs of the same workload
    /// on the same deterministic backend ([`UnitTime`], [`SimDb`])
    /// produce identical reports.
    pub fn seed(mut self, seed: u64) -> Workload {
        self.seed = seed;
        self
    }

    /// Give every instance a completion budget measured from its
    /// submission. Work is never cancelled (exactly the engine's
    /// `Request::deadline` contract); an instance that stabilizes past
    /// its budget is tallied as a **late drop** instead of a
    /// completion and excluded from latency statistics. [`UnitTime`]
    /// has no clock to compare against and ignores the deadline.
    pub fn deadline(mut self, budget: Duration) -> Workload {
        self.deadline = Some(budget);
        self
    }

    /// The flow replicas this workload runs over.
    pub fn flows(&self) -> &[GeneratedFlow] {
        &self.flows
    }

    /// Execute on a backend — sugar for `backend.run(self)`.
    pub fn run<B: Backend + ?Sized>(&self, backend: &B) -> Result<LoadReport, LoadError> {
        backend.run(self)
    }

    /// Validate the cross-backend invariants and resolve the instance
    /// total. Backends call this first.
    fn resolve(&self) -> Result<Resolved, LoadError> {
        if self.flows.is_empty() {
            return Err(LoadError::config("need at least one flow"));
        }
        let strategy = self
            .strategy
            .ok_or_else(|| LoadError::config("strategy not set (Workload::strategy)"))?;
        let total = match (self.instances, self.arrival) {
            (Some(n), _) => n,
            (None, Arrival::Closed { clients, waves }) => clients * waves,
            (None, Arrival::Resubmission { clients, waves, .. }) => clients * waves,
            (None, Arrival::Poisson { .. }) => {
                return Err(LoadError::config(
                    "open (Poisson) arrivals need an explicit Workload::instances total",
                ))
            }
        };
        if total == 0 {
            return Err(LoadError::config("need at least one instance"));
        }
        if self.warmup >= total {
            return Err(LoadError::config("warmup must leave instances to measure"));
        }
        match self.arrival {
            Arrival::Closed { clients: 0, .. } => {
                return Err(LoadError::config(
                    "closed arrivals need at least one client",
                ))
            }
            Arrival::Poisson { rate } if rate <= 0.0 => {
                return Err(LoadError::config("arrival rate must be positive"))
            }
            Arrival::Resubmission { clients: 0, .. } => {
                return Err(LoadError::config(
                    "resubmission arrivals need at least one client",
                ))
            }
            Arrival::Resubmission { delta_rate, .. } if !(0.0..=1.0).contains(&delta_rate) => {
                return Err(LoadError::config("delta_rate must be within [0, 1]"))
            }
            _ => {}
        }
        Ok(Resolved { strategy, total })
    }
}

struct Resolved {
    strategy: Strategy,
    total: usize,
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a [`Workload`] could not run.
#[derive(Debug)]
pub enum LoadError {
    /// The workload is misconfigured (empty flows, zero instances,
    /// warmup ≥ total, missing strategy, non-positive rate, …).
    Config(String),
    /// The [`Server`] backend failed to spawn its worker threads.
    Build(ServerBuildError),
    /// Execution failed mid-run (engine error, submission rejected,
    /// oracle divergence under [`UnitTime::checked`]).
    Exec(String),
}

impl LoadError {
    fn config(msg: impl Into<String>) -> LoadError {
        LoadError::Config(msg.into())
    }
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Config(m) => write!(f, "{m}"),
            LoadError::Build(e) => write!(f, "{e}"),
            LoadError::Exec(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServerBuildError> for LoadError {
    fn from(e: ServerBuildError) -> LoadError {
        LoadError::Build(e)
    }
}

// ---------------------------------------------------------------------------
// LoadReport
// ---------------------------------------------------------------------------

/// The unit latencies are reported in — virtual units of processing
/// on [`UnitTime`], milliseconds everywhere else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyUnit {
    /// The paper's abstract TimeInUnits (virtual clock).
    Units,
    /// Milliseconds (virtual on [`SimDb`], wall-clock on [`Server`]).
    Millis,
}

impl std::fmt::Display for LatencyUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatencyUnit::Units => write!(f, "units"),
            LatencyUnit::Millis => write!(f, "ms"),
        }
    }
}

/// Order statistics of the post-warmup, in-deadline response times.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Percentiles {
    fn from_samples(mut samples: Vec<f64>) -> Percentiles {
        if samples.is_empty() {
            return Percentiles::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        // Nearest-rank: the smallest sample ≥ p of the distribution.
        let at = |p: f64| {
            let rank = (p * samples.len() as f64).ceil() as usize;
            samples[rank.clamp(1, samples.len()) - 1]
        };
        Percentiles {
            p50: at(0.50),
            p90: at(0.90),
            p99: at(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Completion counts split by measurement phase (warmup vs measured)
/// and deadline outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCounts {
    /// In-deadline completions among the first `warmup` instances.
    pub warmup_completed: usize,
    /// In-deadline completions among the measured instances.
    pub measured_completed: usize,
    /// Late drops among the warmup instances.
    pub warmup_late: usize,
    /// Late drops among the measured instances.
    pub measured_late: usize,
}

/// [`SimDb`]-only extras: what the simulated database observed.
#[derive(Clone, Copy, Debug)]
pub struct SimDbStats {
    /// Time-averaged global multiprogramming level.
    pub mean_gmpl: f64,
    /// Mean realized `UnitTime`, ms per unit of processing.
    pub mean_unit_time_ms: f64,
    /// Queries served from the shared cache (0 unless enabled).
    pub cache_hits: u64,
    /// Total virtual time of the run.
    pub makespan: SimTime,
}

/// [`Server`]-only extras: what the real sharded server observed.
#[derive(Clone, Debug)]
pub struct ServerSideStats {
    /// Final per-shard statistics snapshot.
    pub stats: ServerStats,
    /// Distinct shards that executed at least one instance.
    pub shards_used: usize,
    /// The server's telemetry at the end of the run: per-stage latency
    /// histograms (route / validate / queue-wait / execute / e2e) and
    /// lifecycle counters, so a load report decomposes its end-to-end
    /// latency into where the time actually went — renderable as JSON
    /// or Prometheus text.
    pub telemetry: TelemetrySnapshot,
    /// Arrival-schedule fidelity of the open-loop pacer thread
    /// (`None` on closed-loop runs, which have no schedule to hit).
    pub pacer: Option<PacerStats>,
}

/// How closely an open-loop run's dedicated pacer thread hit its
/// seeded-exponential arrival schedule. Deviations are measured
/// against the *absolute* schedule (run start + cumulative gaps), so
/// one late arrival does not silently shift every later one — lag
/// never compounds, and the span comparison is an honest statement of
/// the offered rate the server actually saw.
#[derive(Clone, Copy, Debug)]
pub struct PacerStats {
    /// Arrivals the pacer emitted.
    pub arrivals: usize,
    /// Scheduled offset of the last arrival from the first, seconds.
    pub scheduled_span_secs: f64,
    /// Actual offset of the last emitted arrival from the first,
    /// seconds. Offered-rate fidelity is `actual_span_secs` vs
    /// `scheduled_span_secs`.
    pub actual_span_secs: f64,
    /// Mean per-arrival |actual − scheduled|, seconds.
    pub mean_abs_lag_secs: f64,
    /// Worst per-arrival |actual − scheduled|, seconds.
    pub max_abs_lag_secs: f64,
}

/// Measured outcome of one [`Workload`] run — the same shape on every
/// backend, with backend-specific extras in [`sim`](LoadReport::sim) /
/// [`server`](LoadReport::server).
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Which backend executed the run (`"unit-time"`, `"simdb"`,
    /// `"server"`).
    pub backend: &'static str,
    /// The strategy every instance ran under.
    pub strategy: Strategy,
    /// The arrival process that drove the run.
    pub arrival: Arrival,
    /// Instances submitted (always the resolved workload total).
    pub submitted: usize,
    /// Instances that stabilized within their deadline (warmup
    /// included). `submitted == completed + late_dropped + abandoned`.
    pub completed: usize,
    /// Instances that stabilized *after* their deadline: delivered in
    /// full, but counted as drops and excluded from latency stats.
    pub late_dropped: usize,
    /// Instances that never delivered a result (a task body panicked;
    /// only possible on the [`Server`] backend).
    pub abandoned: usize,
    /// Completion counts per phase.
    pub phases: PhaseCounts,
    /// Post-warmup in-deadline response times, in
    /// [`latency_unit`](LoadReport::latency_unit)s.
    pub responses: Tally,
    /// The unit of [`responses`](LoadReport::responses) and
    /// [`percentiles`](LoadReport::percentiles).
    pub latency_unit: LatencyUnit,
    /// Order statistics of the same samples.
    pub percentiles: Percentiles,
    /// Post-warmup per-instance Work (units of processing).
    pub work: Tally,
    /// Post-warmup per-instance wasted (speculative, discarded) work.
    pub wasted: Tally,
    /// Post-warmup per-instance unneeded-attribute detections.
    pub unneeded: Tally,
    /// Post-warmup in-deadline completions per second of the
    /// measurement window (virtual seconds on [`SimDb`], wall-clock on
    /// [`Server`]; 0 on [`UnitTime`], which has no shared clock) —
    /// the *goodput*, which collapses toward zero once a deadline is
    /// set and the backlog blows every budget.
    pub throughput_per_sec: f64,
    /// Post-warmup deliveries per second of the measurement window,
    /// late drops included — the rate the execution setting actually
    /// finishes work at, which rises with offered load and then
    /// saturates at capacity.
    pub completion_throughput_per_sec: f64,
    /// Duration of the whole run, warmup included (wall-clock on
    /// [`Server`], virtual on [`SimDb`], zero on [`UnitTime`]).
    pub wall: Duration,
    /// Simulated-database extras ([`SimDb`] backend only).
    pub sim: Option<SimDbStats>,
    /// Sharded-server extras ([`Server`] backend only).
    pub server: Option<ServerSideStats>,
}

impl LoadReport {
    /// Mean post-warmup response time, in
    /// [`latency_unit`](LoadReport::latency_unit)s.
    pub fn mean_response(&self) -> f64 {
        self.responses.mean()
    }

    /// Mean post-warmup Work per instance.
    pub fn mean_work(&self) -> f64 {
        self.work.mean()
    }

    /// Mean post-warmup wasted work per instance.
    pub fn mean_wasted(&self) -> f64 {
        self.wasted.mean()
    }

    /// Mean post-warmup unneeded detections per instance.
    pub fn mean_unneeded(&self) -> f64 {
        self.unneeded.mean()
    }

    /// This report as a guideline-map point (meaningful for
    /// [`UnitTime`] runs, where responses are TimeInUnits).
    pub fn point(&self) -> StrategyPoint {
        StrategyPoint {
            strategy: self.strategy,
            work: self.mean_work(),
            time_units: self.mean_response(),
        }
    }

    /// The accounting identity every backend guarantees.
    pub fn accounts_exactly(&self) -> bool {
        self.submitted == self.completed + self.late_dropped + self.abandoned
            && self.completed == self.phases.warmup_completed + self.phases.measured_completed
            && self.late_dropped == self.phases.warmup_late + self.phases.measured_late
    }

    /// Memo-table hit rate the server observed over the run
    /// (`hits / (hits + misses)`). `None` off the server backend or
    /// when the server was built without [`Server::memoize`] /
    /// `ServerBuilder::memoize`.
    pub fn memo_hit_rate(&self) -> Option<f64> {
        let tele = &self.server.as_ref()?.telemetry;
        let hits = tele.counter("memo_hits")?;
        let misses = tele.counter("memo_misses").unwrap_or(0);
        let lookups = hits + misses;
        if lookups == 0 {
            return None;
        }
        Some(hits as f64 / lookups as f64)
    }

    /// `(reused, reexecuted)` attribute totals across every delta
    /// resubmission the server executed during the run — the measured
    /// size of the retained set vs the recomputed cone. `None` off the
    /// server backend or when no delta resubmission ran.
    pub fn delta_counts(&self) -> Option<(u64, u64)> {
        let tele = &self.server.as_ref()?.telemetry;
        let reused = tele.counter("delta_reused")?;
        if reused == 0 {
            return None;
        }
        Some((reused, tele.counter("delta_reexecuted").unwrap_or(0)))
    }
}

// ---------------------------------------------------------------------------
// Backend trait
// ---------------------------------------------------------------------------

/// An execution setting a [`Workload`] can run against.
pub trait Backend {
    /// Short name stamped into [`LoadReport::backend`].
    fn name(&self) -> &'static str;
    /// Execute the workload.
    fn run(&self, workload: &Workload) -> Result<LoadReport, LoadError>;
}

// ---------------------------------------------------------------------------
// Shared accumulation
// ---------------------------------------------------------------------------

/// The run-level facts a backend hands to [`Accounting::into_report`].
struct ReportFrame<'a> {
    backend: &'static str,
    workload: &'a Workload,
    strategy: Strategy,
    submitted: usize,
    window_secs: f64,
    wall: Duration,
    latency_unit: LatencyUnit,
}

/// Accumulates the backend-independent half of a [`LoadReport`].
struct Accounting {
    warmup: usize,
    deadlined: bool,
    phases: PhaseCounts,
    responses: Tally,
    samples: Vec<f64>,
    work: Tally,
    wasted: Tally,
    unneeded: Tally,
    abandoned: usize,
}

impl Accounting {
    fn new(warmup: usize, deadlined: bool) -> Accounting {
        Accounting {
            warmup,
            deadlined,
            phases: PhaseCounts::default(),
            responses: Tally::new(),
            samples: Vec::new(),
            work: Tally::new(),
            wasted: Tally::new(),
            unneeded: Tally::new(),
            abandoned: 0,
        }
    }

    /// Record one delivered instance: `idx` is its arrival index,
    /// `late` whether it blew its deadline.
    fn delivered(
        &mut self,
        idx: usize,
        late: bool,
        response: f64,
        metrics: &decisionflow::engine::InstanceMetrics,
    ) {
        let measured = idx >= self.warmup;
        match (late, measured) {
            (true, true) => self.phases.measured_late += 1,
            (true, false) => self.phases.warmup_late += 1,
            (false, true) => {
                self.phases.measured_completed += 1;
                self.responses.add(response);
                self.samples.push(response);
                self.work.add(metrics.work as f64);
                self.wasted.add(metrics.wasted_work as f64);
                self.unneeded.add(metrics.unneeded_detected as f64);
            }
            (false, false) => self.phases.warmup_completed += 1,
        }
    }

    fn abandoned(&mut self) {
        self.abandoned += 1;
    }

    /// Account one server ticket: deliver its result (recording the
    /// executing shard and the deadline outcome) or count the
    /// abandonment. Shared by the closed-wave driver, the open-loop
    /// pacer, and its dropped-events fallback.
    fn settle_ticket(
        &mut self,
        idx: usize,
        ticket: decisionflow::api::Ticket,
        shards_seen: &mut std::collections::HashSet<usize>,
    ) {
        match ticket.wait() {
            Ok(r) => {
                shards_seen.insert(r.shard);
                self.delivered(
                    idx,
                    r.deadline_exceeded,
                    r.elapsed.as_secs_f64() * 1e3,
                    &r.record.metrics,
                );
            }
            Err(_gone) => self.abandoned(),
        }
    }

    /// Build the report from the run's frame data. `window_secs` is
    /// the measurement window (0 when the backend has no shared clock
    /// — both throughput rates then report 0).
    fn into_report(self, frame: ReportFrame<'_>) -> LoadReport {
        let ReportFrame {
            backend,
            workload,
            strategy,
            submitted,
            window_secs,
            wall,
            latency_unit,
        } = frame;
        debug_assert!(self.deadlined || self.phases.warmup_late + self.phases.measured_late == 0);
        let rate = |count: usize| {
            if window_secs > 0.0 {
                count as f64 / window_secs
            } else {
                0.0
            }
        };
        LoadReport {
            backend,
            strategy,
            arrival: workload.arrival,
            submitted,
            completed: self.phases.warmup_completed + self.phases.measured_completed,
            late_dropped: self.phases.warmup_late + self.phases.measured_late,
            abandoned: self.abandoned,
            throughput_per_sec: rate(self.phases.measured_completed),
            completion_throughput_per_sec: rate(
                self.phases.measured_completed + self.phases.measured_late,
            ),
            phases: self.phases,
            responses: self.responses,
            latency_unit,
            percentiles: Percentiles::from_samples(self.samples),
            work: self.work,
            wasted: self.wasted,
            unneeded: self.unneeded,
            wall,
            sim: None,
            server: None,
        }
    }
}

// ---------------------------------------------------------------------------
// UnitTime backend
// ---------------------------------------------------------------------------

/// The in-process infinite-resource executor: every instance runs on
/// its own virtual unit clock, so the arrival process cannot create
/// contention and only determines *how many* instances run. Responses
/// are the paper's TimeInUnits; deadlines (wall-clock budgets) have no
/// clock to bind to and are ignored.
#[derive(Clone, Copy, Debug)]
pub struct UnitTime {
    /// Check every execution against the declarative oracle
    /// ([`complete_snapshot`]) and fail the run on divergence — the
    /// guarantee the figure sweeps have always shipped with.
    pub verify_oracle: bool,
}

impl UnitTime {
    /// Oracle-checked execution (the default, and what every figure
    /// uses).
    pub fn checked() -> UnitTime {
        UnitTime {
            verify_oracle: true,
        }
    }

    /// Skip the oracle check (twice as fast; for exploratory sweeps).
    pub fn unchecked() -> UnitTime {
        UnitTime {
            verify_oracle: false,
        }
    }
}

impl Default for UnitTime {
    fn default() -> UnitTime {
        UnitTime::checked()
    }
}

impl Backend for UnitTime {
    fn name(&self) -> &'static str {
        "unit-time"
    }

    fn run(&self, workload: &Workload) -> Result<LoadReport, LoadError> {
        let Resolved { strategy, total } = workload.resolve()?;
        if matches!(workload.arrival, Arrival::Resubmission { .. }) {
            return Err(LoadError::config(
                "resubmission arrivals need a server backend (no snapshot store here)",
            ));
        }
        let mut acc = Accounting::new(workload.warmup, false);
        for i in 0..total {
            let flow = &workload.flows[i % workload.flows.len()];
            let report = Request::with_schema(std::sync::Arc::clone(&flow.schema))
                .sources(flow.sources.clone())
                .strategy(strategy)
                .options(workload.options)
                .run()
                .map_err(|e| LoadError::Exec(format!("instance {i}: {e}")))?;
            if self.verify_oracle {
                let snap = complete_snapshot(&flow.schema, &flow.sources)
                    .map_err(|e| LoadError::Exec(format!("oracle for instance {i}: {e}")))?;
                if !report.outcome.runtime.agrees_with(&snap) {
                    return Err(LoadError::Exec(format!(
                        "strategy {strategy} diverged from declarative semantics on flow seed {}",
                        flow.seed
                    )));
                }
            }
            acc.delivered(
                i,
                false,
                report.outcome.time_units as f64,
                &report.outcome.metrics,
            );
        }
        Ok(acc.into_report(ReportFrame {
            backend: self.name(),
            workload,
            strategy,
            submitted: total,
            window_secs: 0.0,
            wall: Duration::ZERO,
            latency_unit: LatencyUnit::Units,
        }))
    }
}

// ---------------------------------------------------------------------------
// SimDb backend
// ---------------------------------------------------------------------------

/// The finite-resource setting of §5: every launched task becomes a
/// query on one shared simulated database ([`simdb`]), time is
/// virtual, and responses are measured in (virtual) milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimDb {
    /// Database configuration (Table 1 defaults).
    pub db: DbConfig,
    /// Share query results across instances: a query whose
    /// (attribute, input values) pair was already answered is served
    /// from a shared cache instead of hitting the database — the
    /// paper's concluding "overlapping data" question.
    pub shared_query_cache: bool,
}

impl SimDb {
    /// The Table-1 database with no cache.
    pub fn new(db: DbConfig) -> SimDb {
        SimDb {
            db,
            shared_query_cache: false,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Arrive,
    Db(DbEvent),
}

struct InstSlot {
    rt: InstanceRuntime,
    arrived: SimTime,
    done: bool,
}

/// The desim model behind the [`SimDb`] backend: Poisson arrivals or
/// closed waves over one shared database.
struct SimDriver<'a> {
    workload: &'a Workload,
    strategy: Strategy,
    total: usize,
    db: SimDbServer,
    insts: Vec<InstSlot>,
    /// job id → (instance index, attribute, precomputed result value).
    jobs: HashMap<u64, (usize, AttrId, Value)>,
    next_job: u64,
    rng: StdRng,
    acc: Accounting,
    finished: usize,
    /// Virtual deadline budget, if the workload set one.
    budget: Option<SimTime>,
    /// Arrival time of the first measured instance (throughput window).
    measure_start: SimTime,
    /// True while a closed wave is being spawned (suppresses the
    /// next-wave trigger until the wave is fully submitted).
    spawning: bool,
    /// (flow replica, attribute, input fingerprint) → cached result.
    cache: HashMap<(usize, u32, u64), Value>,
    cache_hits: u64,
    shared_query_cache: bool,
}

fn inputs_fingerprint(inputs: &[Value]) -> u64 {
    let mut h = 0xCAFE_F00Du64;
    for v in inputs {
        h = h.rotate_left(17) ^ v.fingerprint();
    }
    h
}

impl SimDriver<'_> {
    fn spawn_instance(&mut self, sched: &mut Scheduler<Ev>) -> usize {
        let i = self.insts.len();
        let flow = &self.workload.flows[i % self.workload.flows.len()];
        let rt = InstanceRuntime::with_options(
            std::sync::Arc::clone(&flow.schema),
            self.strategy,
            &flow.sources,
            self.workload.options,
        )
        .expect("generated flows bind all sources");
        if i == self.workload.warmup {
            self.measure_start = sched.now();
        }
        self.insts.push(InstSlot {
            rt,
            arrived: sched.now(),
            done: false,
        });
        i
    }

    /// Launch everything the scheduler allows for instance `i`;
    /// zero-cost tasks complete inline, possibly enabling more
    /// launches, so iterate to quiescence.
    fn pump(&mut self, i: usize, sched: &mut Scheduler<Ev>) {
        loop {
            if self.insts[i].done {
                return;
            }
            let slot = &mut self.insts[i];
            let schema = std::sync::Arc::clone(slot.rt.schema());
            let in_flight = slot.rt.in_flight_count();
            let cands = slot.rt.candidates();
            let picks = scheduler::select(&schema, self.strategy, cands, in_flight);
            if picks.is_empty() {
                break;
            }
            let mut immediate = Vec::new();
            for a in picks {
                let flow_idx = i % self.workload.flows.len();
                let slot = &mut self.insts[i];
                let inputs = slot.rt.launch(a);
                let schema = slot.rt.schema();
                let value = schema.attr(a).task.compute(&inputs);
                let cost = schema.cost(a);
                if self.shared_query_cache {
                    let key = (flow_idx, a.index() as u32, inputs_fingerprint(&inputs));
                    if let Some(hit) = self.cache.get(&key) {
                        // Overlapping data: the answer is known; skip
                        // the database round-trip entirely.
                        self.cache_hits += 1;
                        immediate.push((a, hit.clone()));
                        continue;
                    }
                    self.cache.insert(key, value.clone());
                }
                let id = self.next_job;
                self.next_job += 1;
                let job = QueryJob { id, cost };
                match self.db.submit(job, sched, &Ev::Db) {
                    Some(_c) => immediate.push((a, value)),
                    None => {
                        self.jobs.insert(id, (i, a, value));
                    }
                }
            }
            for (a, v) in immediate {
                self.insts[i].rt.complete(a, v);
            }
            self.check_done(i, sched);
        }
        self.check_done(i, sched);
    }

    fn check_done(&mut self, i: usize, sched: &mut Scheduler<Ev>) {
        let slot = &mut self.insts[i];
        if !slot.done && slot.rt.is_complete() {
            slot.done = true;
            let resp = sched.now().saturating_sub(slot.arrived);
            let late = self.budget.is_some_and(|b| resp > b);
            let metrics = self.insts[i].rt.metrics().clone();
            self.acc.delivered(i, late, resp.as_millis_f64(), &metrics);
            self.finished += 1;
            if self.finished == self.total {
                sched.stop();
            } else {
                self.maybe_next_wave(sched);
            }
        }
    }

    /// Closed-loop pacing: once a wave has fully drained (and been
    /// fully spawned), schedule the next one.
    fn maybe_next_wave(&mut self, sched: &mut Scheduler<Ev>) {
        if self.spawning || !matches!(self.workload.arrival, Arrival::Closed { .. }) {
            return;
        }
        if self.finished == self.insts.len() && self.insts.len() < self.total {
            sched.schedule_in(SimTime::ZERO, Ev::Arrive);
        }
    }
}

impl Model for SimDriver<'_> {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Arrive => match self.workload.arrival {
                Arrival::Poisson { rate } => {
                    let i = self.spawn_instance(sched);
                    if self.insts.len() < self.total {
                        let mean = SimTime::from_secs_f64(1.0 / rate);
                        let gap = exp_time(&mut self.rng, mean);
                        sched.schedule_in(gap, Ev::Arrive);
                    }
                    self.pump(i, sched);
                }
                Arrival::Closed { clients, .. } => {
                    self.spawning = true;
                    let wave = clients.min(self.total - self.insts.len());
                    for _ in 0..wave {
                        let i = self.spawn_instance(sched);
                        self.pump(i, sched);
                    }
                    self.spawning = false;
                    self.maybe_next_wave(sched);
                }
                // invariant: SimDb::run rejects resubmission workloads
                // before the simulation is primed.
                Arrival::Resubmission { .. } => {
                    unreachable!("resubmission arrivals rejected before simulation start")
                }
            },
            Ev::Db(dbev) => {
                if let Some(c) = self.db.handle(dbev, sched, &Ev::Db) {
                    let (i, attr, value) = self
                        .jobs
                        .remove(&c.job.id)
                        .expect("completion for unknown job");
                    self.insts[i].rt.complete(attr, value);
                    self.check_done(i, sched);
                    self.pump(i, sched);
                }
            }
        }
    }
}

impl Backend for SimDb {
    fn name(&self) -> &'static str {
        "simdb"
    }

    fn run(&self, workload: &Workload) -> Result<LoadReport, LoadError> {
        let Resolved { strategy, total } = workload.resolve()?;
        if matches!(workload.arrival, Arrival::Resubmission { .. }) {
            return Err(LoadError::config(
                "resubmission arrivals need a server backend (no snapshot store here)",
            ));
        }
        let driver = SimDriver {
            workload,
            strategy,
            total,
            db: SimDbServer::new(self.db, workload.seed.wrapping_mul(0x9E37_79B9)),
            insts: Vec::with_capacity(total),
            jobs: HashMap::new(),
            next_job: 0,
            rng: StdRng::seed_from_u64(workload.seed),
            acc: Accounting::new(workload.warmup, workload.deadline.is_some()),
            finished: 0,
            budget: workload
                .deadline
                .map(|d| SimTime::from_secs_f64(d.as_secs_f64())),
            measure_start: SimTime::ZERO,
            spawning: false,
            cache: HashMap::new(),
            cache_hits: 0,
            shared_query_cache: self.shared_query_cache,
        };
        let mut sim = Simulation::new(driver);
        sim.prime(SimTime::ZERO, Ev::Arrive);
        // A stop is requested when the last instance completes;
        // Exhausted can only happen if every instance finished with no
        // events left (e.g. all targets disabled at init).
        let _ = sim.run();
        let makespan = sim.now();
        let d = sim.into_model();
        if d.finished != total {
            return Err(LoadError::Exec(format!(
                "run ended before all instances completed ({}/{total})",
                d.finished
            )));
        }
        let window = makespan.saturating_sub(d.measure_start).as_secs_f64();
        let sim_stats = SimDbStats {
            mean_gmpl: d.db.mean_gmpl(),
            mean_unit_time_ms: d.db.unit_times().mean() * 1e3,
            cache_hits: d.cache_hits,
            makespan,
        };
        let mut report = d.acc.into_report(ReportFrame {
            backend: self.name(),
            workload,
            strategy,
            submitted: total,
            window_secs: window.max(1e-9),
            wall: Duration::from_secs_f64(makespan.as_secs_f64()),
            latency_unit: LatencyUnit::Millis,
        });
        report.sim = Some(sim_stats);
        Ok(report)
    }
}

// ---------------------------------------------------------------------------
// Server backend
// ---------------------------------------------------------------------------

/// The real sharded multi-threaded [`EngineServer`]. Closed arrivals
/// reproduce the batched-wave harness (`submit_many`, one wave awaited
/// before the next); Poisson arrivals run an open pacing loop on the
/// calling thread that submits on schedule, **reacts to
/// [`ServerEvents`] completions** between arrivals instead of polling
/// tickets, and tallies late drops via the server-side
/// `InstanceResult::deadline_exceeded` flag (derived from
/// `Request::deadline`).
///
/// [`ServerEvents`]: decisionflow::api::ServerEvents
#[derive(Clone, Debug)]
pub struct Server {
    /// Number of shards (`0` = the machine's available parallelism).
    pub shards: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// When set, the server is opened **durable** over the event store
    /// at this path (`ServerBuilder::durable`) and every
    /// request is submitted with [`Request::durable`] — the load run
    /// then measures the write-ahead-logged hot path, and the
    /// resulting `wal_*` metrics ride along in the report's telemetry
    /// snapshot.
    pub durable_dir: Option<std::path::PathBuf>,
    /// When nonzero, the server is built with cross-request
    /// memoization of this capacity (`ServerBuilder::memoize`) —
    /// identical task executions across requests compute once, and the
    /// report's [`memo_hit_rate`](LoadReport::memo_hit_rate) becomes
    /// meaningful.
    pub memoize: usize,
}

impl Default for Server {
    fn default() -> Server {
        Server {
            shards: 0,
            workers_per_shard: 1,
            durable_dir: None,
            memoize: 0,
        }
    }
}

impl Server {
    fn build(&self, strategy: Strategy, workload: &Workload) -> Result<EngineServer, LoadError> {
        if self.workers_per_shard == 0 {
            return Err(LoadError::config("workers_per_shard must be positive"));
        }
        let shards = if self.shards == 0 {
            EngineServer::default_shard_count()
        } else {
            self.shards
        };
        let mut builder = EngineServer::builder()
            .shards(shards)
            .workers_per_shard(self.workers_per_shard)
            .strategy(strategy);
        if let Some(dir) = &self.durable_dir {
            builder = builder.durable(dir.clone());
        }
        if self.memoize > 0 {
            builder = builder.memoize(self.memoize);
        }
        let server = builder
            .build()
            .map_err(|e| LoadError::Exec(e.to_string()))?;
        register_flows(&server, workload);
        Ok(server)
    }
}

/// Register the workload's flows into `server` as `flow0`, `flow1`, …
/// — the names [`server_request`] submits against. [`OnServer`] calls
/// this on a *caller-owned* server, overwriting any schemas previously
/// registered under those names.
fn register_flows(server: &EngineServer, workload: &Workload) {
    for (i, flow) in workload.flows.iter().enumerate() {
        server.register(format!("flow{i}"), std::sync::Arc::clone(&flow.schema));
    }
}

/// The `i`-th request of a server run. The strategy is set explicitly
/// (not left to the server default) so a borrowed [`OnServer`] backend
/// runs the workload's strategy even when the caller built the server
/// with a different one.
fn server_request(workload: &Workload, strategy: Strategy, i: usize, durable: bool) -> Request {
    let flow = &workload.flows[i % workload.flows.len()];
    let mut req = Request::named(format!("flow{}", i % workload.flows.len()))
        .sources(flow.sources.clone())
        .options(workload.options)
        .strategy(strategy)
        .durable(durable);
    if let Some(budget) = workload.deadline {
        req = req.deadline(budget);
    }
    req
}

/// Closed waves against an already-built server: `clients`-sized
/// `submit_many` batches, each wave awaited before the next.
fn run_closed_on(
    server: &EngineServer,
    backend: &'static str,
    workload: &Workload,
    strategy: Strategy,
    total: usize,
    clients: usize,
    durable: bool,
) -> Result<LoadReport, LoadError> {
    let mut acc = Accounting::new(workload.warmup, workload.deadline.is_some());
    let mut shards_seen = std::collections::HashSet::new();
    let t0 = Instant::now();
    // Starts when the first wave containing a measured instance is
    // submitted, so the throughput window covers every measured
    // instance but neither server construction nor pure-warmup
    // waves.
    let mut measure_t0: Option<Instant> = None;
    let mut next = 0usize;
    while next < total {
        let wave = clients.min(total - next);
        if measure_t0.is_none() && next + wave > workload.warmup {
            measure_t0 = Some(Instant::now());
        }
        let tickets = server
            .submit_many((0..wave).map(|k| server_request(workload, strategy, next + k, durable)))
            .map_err(|e| LoadError::Exec(e.to_string()))?;
        for (k, t) in tickets.into_iter().enumerate() {
            acc.settle_ticket(next + k, t, &mut shards_seen);
        }
        next += wave;
    }
    let wall = t0.elapsed();
    let measured_wall = measure_t0.map(|t| t.elapsed()).unwrap_or(wall);
    let mut report = acc.into_report(ReportFrame {
        backend,
        workload,
        strategy,
        submitted: total,
        window_secs: measured_wall.as_secs_f64().max(1e-9),
        wall,
        latency_unit: LatencyUnit::Millis,
    });
    // A durable run quiesces the WAL before the snapshot, so the
    // report's `wal_*` metrics cover every append the run enqueued.
    if let Some(store) = server.store() {
        let _ = store.sync();
    }
    report.server = Some(ServerSideStats {
        stats: server.stats(),
        shards_used: shards_seen.len(),
        telemetry: server.telemetry().snapshot(),
        pacer: None,
    });
    Ok(report)
}

/// Deterministic per-wave source perturbation for resubmission churn:
/// numeric values shift by the wave number (so every wave's binding
/// differs from the last snapshot's), non-numeric values are left
/// alone (an unchanged binding simply stays out of the delta cone).
fn perturb(v: Value, wave: usize) -> Value {
    match v {
        Value::Int(i) => Value::Int(i.wrapping_add(wave as i64)),
        Value::Float(f) => Value::Float(f + wave as f64),
        other => other,
    }
}

/// The request client `c` submits in `wave` of a resubmission run:
/// wave 0 is the cold labeled seeding run; later waves rebind `churn`
/// sources (rotating which ones, so the cone moves around the schema)
/// and ride the delta path when `delta` is set.
fn resub_request(
    workload: &Workload,
    strategy: Strategy,
    c: usize,
    wave: usize,
    churn: usize,
    delta: bool,
    durable: bool,
) -> Request {
    let fidx = c % workload.flows.len();
    let flow = &workload.flows[fidx];
    let mut sources = flow.sources.clone();
    if wave > 0 && churn > 0 {
        let srcs = flow.schema.sources();
        for k in 0..churn.min(srcs.len()) {
            let a = srcs[(wave * churn + k) % srcs.len()];
            if let Some(v) = sources.get(a).cloned() {
                sources.set(a, perturb(v, wave));
            }
        }
    }
    let mut req = Request::named(format!("flow{fidx}"))
        .sources(sources)
        .options(workload.options)
        .strategy(strategy)
        .durable(durable)
        .label(format!("client{c}"));
    if wave > 0 && delta {
        req = req.delta_by_label();
    }
    if let Some(budget) = workload.deadline {
        req = req.deadline(budget);
    }
    req
}

/// Closed resubmission waves against an already-built server: wave 0
/// seeds every client's snapshot cold, later waves resubmit the same
/// labels — each as a delta with probability `delta_rate` (seeded by
/// [`Workload::seed`], so two runs offer the identical request
/// sequence). Waves are awaited like [`run_closed_on`]'s, which also
/// guarantees every delta resubmission finds its client's previous
/// completion already committed.
#[allow(clippy::too_many_arguments)]
fn run_resub_on(
    server: &EngineServer,
    backend: &'static str,
    workload: &Workload,
    strategy: Strategy,
    total: usize,
    clients: usize,
    delta_rate: f64,
    churn: usize,
    durable: bool,
) -> Result<LoadReport, LoadError> {
    let mut acc = Accounting::new(workload.warmup, workload.deadline.is_some());
    let mut shards_seen = std::collections::HashSet::new();
    let mut rng = StdRng::seed_from_u64(workload.seed);
    let t0 = Instant::now();
    let mut measure_t0: Option<Instant> = None;
    let mut next = 0usize;
    while next < total {
        let wave_n = clients.min(total - next);
        let wave = next / clients;
        if measure_t0.is_none() && next + wave_n > workload.warmup {
            measure_t0 = Some(Instant::now());
        }
        let requests: Vec<Request> = (0..wave_n)
            .map(|c| {
                let delta = rng.gen_bool(delta_rate);
                resub_request(workload, strategy, c, wave, churn, delta, durable)
            })
            .collect();
        let tickets = server
            .submit_many(requests)
            .map_err(|e| LoadError::Exec(e.to_string()))?;
        for (k, t) in tickets.into_iter().enumerate() {
            acc.settle_ticket(next + k, t, &mut shards_seen);
        }
        next += wave_n;
    }
    let wall = t0.elapsed();
    let measured_wall = measure_t0.map(|t| t.elapsed()).unwrap_or(wall);
    let mut report = acc.into_report(ReportFrame {
        backend,
        workload,
        strategy,
        submitted: total,
        window_secs: measured_wall.as_secs_f64().max(1e-9),
        wall,
        latency_unit: LatencyUnit::Millis,
    });
    if let Some(store) = server.store() {
        let _ = store.sync();
    }
    report.server = Some(ServerSideStats {
        stats: server.stats(),
        shards_used: shards_seen.len(),
        telemetry: server.telemetry().snapshot(),
        pacer: None,
    });
    Ok(report)
}

/// Open Poisson pacing against an already-built server, split across
/// two dedicated threads:
///
/// * a **pacer** that submits each instance at its (seeded,
///   exponential-gap) arrival time against the *absolute* schedule —
///   sleeping most of each gap and spinning the last stretch, so
///   thread wake-up latency does not make every arrival a scheduler
///   quantum late at ≫1k/s offered rates — and never waits on
///   results;
/// * a **collector** (the calling thread) that consumes the server's
///   event stream and adopts tickets from the pacer, settling each
///   instance the moment its terminal event lands — no ticket
///   polling, and no submission stalls while a completion is being
///   accounted.
///
/// Pacing continues regardless of backlog: that is what makes the
/// system saturate when offered load exceeds capacity. The realized
/// schedule fidelity is reported in [`PacerStats`].
fn run_open_on(
    server: &EngineServer,
    backend: &'static str,
    workload: &Workload,
    strategy: Strategy,
    total: usize,
    rate: f64,
    durable: bool,
) -> Result<LoadReport, LoadError> {
    // Submitted + Completed/Abandoned per instance, plus headroom:
    // sized so the collector (which drains continuously) never
    // forces drops; a fallback below handles the pathological case
    // anyway.
    let events = server.subscribe_with_capacity(2 * total + 64);
    let mean = SimTime::from_secs_f64(1.0 / rate);
    let mut acc = Accounting::new(workload.warmup, workload.deadline.is_some());
    let mut pending: HashMap<u64, (usize, decisionflow::api::Ticket)> = HashMap::new();
    // Terminal events that beat their ticket through the channel: the
    // event stream and the ticket channel race, so a completion can
    // land before the collector has adopted the instance.
    let mut orphans: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut shards_seen = std::collections::HashSet::new();
    let t0 = Instant::now();
    let mut last_done = t0;
    let mut accounted = 0usize;

    let (tx, rx) = std::sync::mpsc::channel::<(usize, decisionflow::api::Ticket)>();

    let (pacer_result, pacer_stats, measure_t0) = std::thread::scope(|scope| {
        let pacer = scope.spawn(move || {
            // Spin-finish window: sleep until this close to the target,
            // then spin. Large enough to absorb typical wake-up
            // latency, small enough not to monopolize a core.
            const SPIN: Duration = Duration::from_micros(60);
            let mut rng = StdRng::seed_from_u64(workload.seed);
            let start = Instant::now();
            let mut measure_t0 = start;
            let mut scheduled = Duration::ZERO;
            let mut first = (Duration::ZERO, Duration::ZERO);
            let mut last = (Duration::ZERO, Duration::ZERO);
            let mut lag_sum = 0f64;
            let mut lag_max = 0f64;
            let mut emitted = 0usize;
            let mut result = Ok(());
            for idx in 0..total {
                let target = start + scheduled;
                loop {
                    let now = Instant::now();
                    if now >= target {
                        break;
                    }
                    let remaining = target - now;
                    if remaining > SPIN {
                        std::thread::sleep(remaining - SPIN);
                    } else {
                        std::hint::spin_loop();
                    }
                }
                if idx == workload.warmup {
                    measure_t0 = Instant::now();
                }
                let ticket = match server.submit(server_request(workload, strategy, idx, durable)) {
                    Ok(t) => t,
                    Err(e) => {
                        result = Err(LoadError::Exec(e.to_string()));
                        break;
                    }
                };
                let actual = start.elapsed();
                let lag = (actual.as_secs_f64() - scheduled.as_secs_f64()).abs();
                lag_sum += lag;
                lag_max = lag_max.max(lag);
                if emitted == 0 {
                    first = (scheduled, actual);
                }
                last = (scheduled, actual);
                emitted += 1;
                if tx.send((idx, ticket)).is_err() {
                    break; // collector gone; stop offering load
                }
                scheduled += Duration::from_secs_f64(exp_time(&mut rng, mean).as_secs_f64());
            }
            let stats = PacerStats {
                arrivals: emitted,
                scheduled_span_secs: (last.0 - first.0).as_secs_f64(),
                actual_span_secs: (last.1 - first.1).as_secs_f64(),
                mean_abs_lag_secs: if emitted > 0 {
                    lag_sum / emitted as f64
                } else {
                    0.0
                },
                max_abs_lag_secs: lag_max,
            };
            (result, stats, measure_t0)
        });

        let mut rx_done = false;
        'collect: while accounted < total {
            // Adopt newly submitted tickets; settle any whose
            // terminal event already arrived.
            loop {
                match rx.try_recv() {
                    Ok((idx, ticket)) => {
                        if orphans.remove(&ticket.instance_id()) {
                            acc.settle_ticket(idx, ticket, &mut shards_seen);
                            accounted += 1;
                            last_done = Instant::now();
                        } else {
                            pending.insert(ticket.instance_id(), (idx, ticket));
                        }
                    }
                    Err(std::sync::mpsc::TryRecvError::Empty) => break,
                    Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        rx_done = true;
                        break;
                    }
                }
            }
            if accounted >= total || (rx_done && pending.is_empty()) {
                break;
            }
            // If the subscription ever dropped events (it should not:
            // the buffer covers the whole run), fall back to waiting
            // the remaining tickets directly so the run still
            // accounts exactly.
            if events.dropped() > 0 {
                break;
            }
            match events.recv_timeout(Duration::from_millis(10)) {
                Ok(Some(ev)) => {
                    use decisionflow::api::InstanceEvent as E;
                    match ev {
                        E::Submitted { .. } => {}
                        E::Completed { instance_id, .. } | E::Abandoned { instance_id, .. } => {
                            if let Some((idx, ticket)) = pending.remove(&instance_id) {
                                // A terminal event is published just
                                // before the result is sent (or the
                                // sender dropped), so this wait is at
                                // most a few microseconds — the only
                                // wait the collector does on a ticket.
                                acc.settle_ticket(idx, ticket, &mut shards_seen);
                                accounted += 1;
                                last_done = Instant::now();
                            } else {
                                orphans.insert(instance_id);
                            }
                        }
                    }
                }
                Ok(None) => {}
                Err(_gone) => break 'collect,
            }
        }
        // Fallback settlement: adopt whatever the pacer still emits
        // (the iterator ends when it drops its sender), then settle
        // every pending ticket directly. On the happy path both loops
        // see nothing.
        for (idx, ticket) in rx.iter() {
            acc.settle_ticket(idx, ticket, &mut shards_seen);
            accounted += 1;
            last_done = Instant::now();
        }
        for (idx, ticket) in pending.drain().map(|(_, v)| v) {
            acc.settle_ticket(idx, ticket, &mut shards_seen);
            last_done = Instant::now();
        }
        match pacer.join() {
            Ok(out) => out,
            Err(_) => (
                Err(LoadError::Exec("pacer thread panicked".into())),
                PacerStats {
                    arrivals: 0,
                    scheduled_span_secs: 0.0,
                    actual_span_secs: 0.0,
                    mean_abs_lag_secs: 0.0,
                    max_abs_lag_secs: 0.0,
                },
                t0,
            ),
        }
    });
    pacer_result?;
    let wall = t0.elapsed();
    let window = last_done
        .saturating_duration_since(measure_t0)
        .as_secs_f64();
    let mut report = acc.into_report(ReportFrame {
        backend,
        workload,
        strategy,
        submitted: total,
        window_secs: window.max(1e-9),
        wall,
        latency_unit: LatencyUnit::Millis,
    });
    // A durable run quiesces the WAL before the snapshot, so the
    // report's `wal_*` metrics cover every append the run enqueued.
    if let Some(store) = server.store() {
        let _ = store.sync();
    }
    report.server = Some(ServerSideStats {
        stats: server.stats(),
        shards_used: shards_seen.len(),
        telemetry: server.telemetry().snapshot(),
        pacer: Some(pacer_stats),
    });
    Ok(report)
}

impl Backend for Server {
    fn name(&self) -> &'static str {
        "server"
    }

    fn run(&self, workload: &Workload) -> Result<LoadReport, LoadError> {
        let Resolved { strategy, total } = workload.resolve()?;
        let server = self.build(strategy, workload)?;
        let durable = self.durable_dir.is_some();
        match workload.arrival {
            Arrival::Closed { clients, .. } => run_closed_on(
                &server,
                self.name(),
                workload,
                strategy,
                total,
                clients,
                durable,
            ),
            Arrival::Poisson { rate } => run_open_on(
                &server,
                self.name(),
                workload,
                strategy,
                total,
                rate,
                durable,
            ),
            Arrival::Resubmission {
                clients,
                delta_rate,
                churn,
                ..
            } => run_resub_on(
                &server,
                self.name(),
                workload,
                strategy,
                total,
                clients,
                delta_rate,
                churn,
                durable,
            ),
        }
    }
}

/// A [`Backend`] that runs the workload on a **caller-owned**
/// [`EngineServer`] instead of building a private one — the workload
/// becomes one load source among whatever else the server is doing,
/// and its effects show up in the server's own
/// [`telemetry`](EngineServer::telemetry), stats, and event streams
/// (which is exactly what a live dashboard wants; see
/// `examples/server_dashboard.rs`).
///
/// Differences from [`Server`]:
///
/// * the server's shard/worker layout is whatever the caller built;
/// * [`run`](Backend::run) registers the workload's flows into the
///   server as `flow0`, `flow1`, … — overwriting schemas previously
///   registered under those names;
/// * every request carries the workload's strategy explicitly, so the
///   server's default strategy does not leak into the run;
/// * the final [`ServerSideStats`] snapshot aggregates the server's
///   whole history, not just this workload's instances.
#[derive(Clone, Copy)]
pub struct OnServer<'a> {
    server: &'a EngineServer,
    durable: bool,
}

impl<'a> OnServer<'a> {
    /// Run workloads on `server` instead of a freshly built one.
    pub fn new(server: &'a EngineServer) -> OnServer<'a> {
        OnServer {
            server,
            durable: false,
        }
    }

    /// Submit every request with [`Request::durable`]. The borrowed
    /// server must have been built with `ServerBuilder::durable` (it
    /// needs an event store), or every submission fails.
    pub fn durable(mut self, durable: bool) -> OnServer<'a> {
        self.durable = durable;
        self
    }
}

impl Backend for OnServer<'_> {
    fn name(&self) -> &'static str {
        "server"
    }

    fn run(&self, workload: &Workload) -> Result<LoadReport, LoadError> {
        let Resolved { strategy, total } = workload.resolve()?;
        register_flows(self.server, workload);
        match workload.arrival {
            Arrival::Closed { clients, .. } => run_closed_on(
                self.server,
                self.name(),
                workload,
                strategy,
                total,
                clients,
                self.durable,
            ),
            Arrival::Poisson { rate } => run_open_on(
                self.server,
                self.name(),
                workload,
                strategy,
                total,
                rate,
                self.durable,
            ),
            Arrival::Resubmission {
                clients,
                delta_rate,
                churn,
                ..
            } => run_resub_on(
                self.server,
                self.name(),
                workload,
                strategy,
                total,
                clients,
                delta_rate,
                churn,
                self.durable,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows(n: u64, params: PatternParams) -> Vec<GeneratedFlow> {
        (0..n)
            .map(|i| generate(params, 1000 + i).unwrap())
            .collect()
    }

    fn small() -> PatternParams {
        PatternParams {
            nb_nodes: 16,
            nb_rows: 4,
            pct_enabled: 75,
            ..Default::default()
        }
    }

    #[test]
    fn one_workload_runs_on_all_three_backends() {
        let w = Workload::new(flows(3, small()))
            .arrivals(Arrival::Closed {
                clients: 4,
                waves: 6,
            })
            .warmup(4)
            .seed(7)
            .strategy("PCE100".parse().unwrap());
        let unit = w.run(&UnitTime::checked()).unwrap();
        let sim = w.run(&SimDb::default()).unwrap();
        let server = w
            .run(&Server {
                shards: 2,
                workers_per_shard: 1,
                ..Server::default()
            })
            .unwrap();
        for r in [&unit, &sim, &server] {
            assert_eq!(r.submitted, 24, "{}", r.backend);
            assert_eq!(r.completed, 24, "{}", r.backend);
            assert_eq!(r.abandoned, 0, "{}", r.backend);
            assert_eq!(r.late_dropped, 0, "{}", r.backend);
            assert!(r.accounts_exactly(), "{}", r.backend);
            assert_eq!(r.responses.count(), 20, "{}: post-warmup", r.backend);
            assert!(r.mean_work() > 0.0, "{}", r.backend);
            assert!(r.percentiles.p50 <= r.percentiles.p99, "{}", r.backend);
            assert!(r.percentiles.p99 <= r.percentiles.max, "{}", r.backend);
        }
        assert_eq!(unit.latency_unit, LatencyUnit::Units);
        assert_eq!(sim.latency_unit, LatencyUnit::Millis);
        assert!(sim.sim.is_some() && sim.server.is_none());
        assert!(server.server.is_some() && server.sim.is_none());
        assert!(server.throughput_per_sec > 0.0);
        // All backends execute the same engine; Work may differ
        // slightly run-to-run (unneeded-pruning races launches under
        // real/simulated timing) but stays in the same ballpark.
        assert!((unit.mean_work() - sim.mean_work()).abs() / unit.mean_work() < 0.2);
        assert!((unit.mean_work() - server.mean_work()).abs() / unit.mean_work() < 0.2);
    }

    #[test]
    fn simdb_backend_is_deterministic_per_seed() {
        let fl = flows(2, small());
        let w = Workload::new(fl)
            .arrivals(Arrival::Poisson { rate: 5.0 })
            .instances(20)
            .warmup(5)
            .seed(9)
            .strategy("PSE100".parse().unwrap());
        let a = w.run(&SimDb::default()).unwrap();
        let b = w.run(&SimDb::default()).unwrap();
        assert_eq!(a.responses.mean(), b.responses.mean());
        assert_eq!(a.sim.unwrap().makespan, b.sim.unwrap().makespan);
        assert_eq!(a.percentiles, b.percentiles);
    }

    #[test]
    fn simdb_contention_raises_response_time() {
        let fl = flows(3, small());
        let base = Workload::new(fl)
            .instances(60)
            .warmup(15)
            .seed(5)
            .strategy("PCE100".parse().unwrap());
        let quiet = base
            .clone()
            .arrivals(Arrival::Poisson { rate: 2.0 })
            .run(&SimDb::default())
            .unwrap();
        let busy = base
            .arrivals(Arrival::Poisson { rate: 25.0 })
            .run(&SimDb::default())
            .unwrap();
        assert!(
            busy.responses.mean() > quiet.responses.mean(),
            "contention must raise response: {} vs {}",
            busy.responses.mean(),
            quiet.responses.mean()
        );
        assert!(busy.sim.unwrap().mean_gmpl > quiet.sim.unwrap().mean_gmpl);
    }

    #[test]
    fn simdb_closed_waves_bound_concurrency() {
        // One client, closed loop: at most one instance in the system,
        // so Gmpl never exceeds what a single instance can drive and
        // waves arrive back-to-back.
        let fl = flows(2, small());
        let w = Workload::new(fl)
            .arrivals(Arrival::Closed {
                clients: 1,
                waves: 10,
            })
            .seed(3)
            .strategy("PCE0".parse().unwrap());
        let r = w.run(&SimDb::default()).unwrap();
        assert_eq!(r.completed, 10);
        assert!(r.accounts_exactly());
        assert!(
            r.sim.unwrap().mean_gmpl <= 1.0 + 1e-9,
            "sequential strategy, one client: at most one query in flight"
        );
    }

    #[test]
    fn simdb_deadline_accounting_is_exact() {
        // Offered load far beyond capacity with a tight virtual
        // deadline: some instances must blow the budget, and the
        // identity submitted = completed + late + abandoned holds.
        let fl = flows(2, small());
        let w = Workload::new(fl)
            .arrivals(Arrival::Poisson { rate: 50.0 })
            .instances(60)
            .warmup(10)
            .seed(11)
            .deadline(Duration::from_millis(400))
            .strategy("PCE100".parse().unwrap());
        let r = w.run(&SimDb::default()).unwrap();
        assert_eq!(r.submitted, 60);
        assert!(r.accounts_exactly());
        assert!(r.late_dropped > 0, "overload must produce late drops");
        assert_eq!(r.abandoned, 0, "simdb never abandons");
        assert_eq!(
            r.responses.count() as usize,
            r.phases.measured_completed,
            "latency stats only cover in-deadline measured instances"
        );
        // Late drops and completions partition by phase.
        assert_eq!(
            r.completed + r.late_dropped,
            60,
            "every instance still stabilizes"
        );
    }

    #[test]
    fn server_closed_spreads_over_shards() {
        let fl = flows(3, small());
        let r = Workload::new(fl)
            .arrivals(Arrival::Closed {
                clients: 16,
                waves: 4,
            })
            .warmup(8)
            .strategy("PSE100".parse().unwrap())
            .run(&Server {
                shards: 4,
                workers_per_shard: 1,
                ..Server::default()
            })
            .unwrap();
        assert_eq!(r.completed, 64);
        assert_eq!(r.responses.count(), 56, "post-warmup instances");
        let side = r.server.as_ref().unwrap();
        assert!(side.shards_used >= 2, "instances must land on ≥2 shards");
        assert!(r.throughput_per_sec > 0.0);
        assert_eq!(side.stats.shard_count(), 4);
        assert_eq!(side.stats.completed(), 64);
        assert_eq!(side.stats.in_flight(), 0);
        assert_eq!(side.stats.queued_jobs(), 0);
    }

    #[test]
    fn server_durable_mode_logs_and_reports_wal_metrics() {
        let dir = std::env::temp_dir().join(format!(
            "dflowperf-durable-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let r = Workload::new(flows(2, small()))
            .arrivals(Arrival::Closed {
                clients: 4,
                waves: 3,
            })
            .strategy("PCE100".parse().unwrap())
            .run(&Server {
                shards: 2,
                workers_per_shard: 1,
                durable_dir: Some(dir.clone()),
                ..Server::default()
            })
            .unwrap();
        assert_eq!(r.completed, 12);
        let tele = &r.server.as_ref().unwrap().telemetry;
        assert!(
            tele.counter("wal_appends").unwrap_or(0) > 0,
            "durable runs surface WAL metrics in the report's telemetry"
        );
        // The store outlives the run: every instance is sealed on disk.
        let store = decisionflow::store::EventStore::open(&dir).unwrap();
        assert_eq!(store.recovered().pending.len(), 0, "nothing left pending");
        assert_eq!(store.recovered().sealed.len(), 12);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn server_open_paces_reacts_and_accounts() {
        // A small open-arrival run against the real server: every
        // instance is accounted through the event stream, and the
        // identity holds with a deadline set.
        let fl: Vec<GeneratedFlow> = flows(2, small())
            .into_iter()
            .map(|f| f.with_unit_delay(Duration::from_micros(100)))
            .collect();
        let r = Workload::new(fl)
            .arrivals(Arrival::Poisson { rate: 200.0 })
            .instances(40)
            .warmup(8)
            .seed(2)
            .deadline(Duration::from_secs(30))
            .strategy("PCE100".parse().unwrap())
            .run(&Server {
                shards: 2,
                workers_per_shard: 1,
                ..Server::default()
            })
            .unwrap();
        assert_eq!(r.submitted, 40);
        assert!(r.accounts_exactly());
        assert_eq!(r.abandoned, 0);
        assert_eq!(r.late_dropped, 0, "30s budget is never exceeded here");
        assert_eq!(r.responses.count(), 32);
        assert!(r.throughput_per_sec > 0.0);
        let side = r.server.unwrap();
        assert!(side.stats.completed() == 40);
        let pacer = side.pacer.expect("open runs report pacer stats");
        assert_eq!(pacer.arrivals, 40);
        assert!(pacer.scheduled_span_secs > 0.0);
    }

    /// Offered-rate fidelity: at 10k/s the dedicated pacer thread's
    /// emitted arrival span must stay within 1% of its
    /// seeded-exponential schedule. The absolute-schedule design means
    /// transient stalls self-correct, so the criterion is stable —
    /// but the test still allows a noisy-neighbor retry before
    /// declaring the pacer broken.
    #[test]
    fn server_open_pacer_holds_offered_rate_at_10k_per_sec() {
        let tiny = PatternParams {
            nb_nodes: 4,
            nb_rows: 2,
            pct_enabled: 100,
            ..Default::default()
        };
        let mut last_err = String::new();
        for attempt in 0..3u64 {
            let r = Workload::new(flows(1, tiny))
                .arrivals(Arrival::Poisson { rate: 10_000.0 })
                .instances(2_000)
                .warmup(100)
                .seed(23 + attempt)
                .strategy("PCE0".parse().unwrap())
                .run(&Server {
                    shards: 1,
                    workers_per_shard: 2,
                    ..Server::default()
                })
                .unwrap();
            assert!(r.accounts_exactly());
            let pacer = r
                .server
                .unwrap()
                .pacer
                .expect("open runs report pacer stats");
            assert_eq!(pacer.arrivals, 2_000, "every arrival emitted");
            assert!(
                pacer.scheduled_span_secs > 0.1,
                "2000 arrivals at 10k/s schedule ≈ 0.2s, got {}",
                pacer.scheduled_span_secs
            );
            let err = (pacer.actual_span_secs - pacer.scheduled_span_secs).abs()
                / pacer.scheduled_span_secs;
            if err <= 0.01 {
                return;
            }
            last_err = format!(
                "attempt {attempt}: span error {:.3}% (actual {:.4}s vs scheduled {:.4}s, \
                 max per-arrival lag {:.1}µs)",
                err * 100.0,
                pacer.actual_span_secs,
                pacer.scheduled_span_secs,
                pacer.max_abs_lag_secs * 1e6,
            );
        }
        panic!("pacer missed 1% offered-rate fidelity on 3 attempts: {last_err}");
    }

    #[test]
    fn workload_validation_rejects_bad_configs() {
        let fl = flows(1, small());
        let strat: Strategy = "PCE0".parse().unwrap();
        let err = |w: Workload| w.run(&UnitTime::unchecked()).unwrap_err().to_string();
        assert!(err(Workload::new(Vec::<GeneratedFlow>::new())
            .strategy(strat)
            .instances(1))
        .contains("at least one flow"));
        assert!(err(Workload::new(fl.clone()).instances(1)).contains("strategy not set"));
        assert!(err(Workload::new(fl.clone()).strategy(strat)).contains("at least one instance"));
        assert!(err(Workload::new(fl.clone())
            .strategy(strat)
            .arrivals(Arrival::Poisson { rate: 2.0 }))
        .contains("instances"));
        assert!(err(Workload::new(fl.clone())
            .strategy(strat)
            .arrivals(Arrival::Poisson { rate: -1.0 })
            .instances(5))
        .contains("rate must be positive"));
        assert!(err(Workload::new(fl.clone())
            .strategy(strat)
            .instances(5)
            .warmup(5))
        .contains("warmup must leave"));
        assert!(err(Workload::new(fl.clone())
            .strategy(strat)
            .instances(6)
            .arrivals(Arrival::Resubmission {
                clients: 0,
                waves: 3,
                delta_rate: 1.0,
                churn: 0,
            }))
        .contains("at least one client"));
        assert!(err(Workload::new(fl)
            .strategy(strat)
            .arrivals(Arrival::Resubmission {
                clients: 2,
                waves: 3,
                delta_rate: 1.5,
                churn: 0,
            }))
        .contains("delta_rate"));
    }

    /// Resubmission waves on the server backend: wave 0 seeds every
    /// client's snapshot, later waves ride the delta path half the
    /// time. With zero churn the resubmitted sources equal the
    /// snapshot exactly, so every delta reuses the whole flow and
    /// re-executes nothing, while every cold resubmission replays
    /// identical inputs and hits the memo table populated by earlier
    /// waves (waves are awaited, so those entries are committed).
    #[test]
    fn resubmission_mode_reuses_snapshots_and_hits_memo() {
        let w = Workload::new(flows(2, small()))
            .arrivals(Arrival::Resubmission {
                clients: 4,
                waves: 5,
                delta_rate: 0.5,
                churn: 0,
            })
            .warmup(4)
            .seed(21)
            .strategy("PCE100".parse().unwrap());
        let r = w
            .run(&Server {
                shards: 2,
                workers_per_shard: 1,
                memoize: 256,
                ..Server::default()
            })
            .unwrap();
        assert_eq!(r.submitted, 20);
        assert_eq!(r.completed, 20);
        assert!(r.accounts_exactly());
        let (reused, reexecuted) = r.delta_counts().expect("deltas ran");
        assert!(reused > 0, "zero-churn deltas must retain values");
        assert_eq!(
            reexecuted, 0,
            "zero-churn deltas re-execute nothing: {reexecuted}"
        );
        let hit_rate = r.memo_hit_rate().expect("memo enabled");
        assert!(
            hit_rate > 0.0,
            "clients sharing a flow must hit the memo: {hit_rate}"
        );
    }

    /// Churned resubmissions rebind a source each wave, so the delta
    /// cone is non-empty and the engine relaunches downstream work.
    /// The run still completes and accounts exactly — and the request
    /// sequence is seed-deterministic, so two runs agree on counts.
    #[test]
    fn resubmission_churn_reexecutes_and_is_seed_deterministic() {
        let w = Workload::new(flows(1, small()))
            .arrivals(Arrival::Resubmission {
                clients: 2,
                waves: 4,
                delta_rate: 0.5,
                churn: 1,
            })
            .seed(13)
            .strategy("PCE100".parse().unwrap());
        let backend = Server {
            shards: 1,
            workers_per_shard: 2,
            ..Server::default()
        };
        let a = w.run(&backend).unwrap();
        let b = w.run(&backend).unwrap();
        for r in [&a, &b] {
            assert_eq!(r.submitted, 8);
            assert_eq!(r.completed, 8);
            assert!(r.accounts_exactly());
            assert!(r.memo_hit_rate().is_none(), "memoization off by default");
        }
        let tel = |r: &LoadReport| {
            let t = &r.server.as_ref().unwrap().telemetry;
            (t.counter("delta_reused"), t.counter("delta_reexecuted"))
        };
        assert_eq!(tel(&a), tel(&b), "same seed, same delta traffic");
    }

    /// Resubmission needs a completion-snapshot store, which only the
    /// server backend has — the closed-world backends refuse upfront.
    #[test]
    fn resubmission_rejected_off_server() {
        let w = Workload::new(flows(1, small()))
            .arrivals(Arrival::Resubmission {
                clients: 2,
                waves: 2,
                delta_rate: 1.0,
                churn: 0,
            })
            .strategy("PCE0".parse().unwrap());
        for msg in [
            w.run(&UnitTime::unchecked()).unwrap_err().to_string(),
            w.run(&SimDb::default()).unwrap_err().to_string(),
        ] {
            assert!(msg.contains("server backend"), "{msg}");
        }
    }

    #[test]
    fn percentiles_order_statistics() {
        let p = Percentiles::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p90, 90.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.max, 100.0);
        assert_eq!(Percentiles::from_samples(vec![]), Percentiles::default());
    }

    /// The shared query cache offloads the database (the paper's
    /// concluding "overlapping data" question).
    #[test]
    fn shared_cache_offloads_the_database() {
        let fl = flows(1, small());
        let base = Workload::new(fl)
            .arrivals(Arrival::Poisson { rate: 6.0 })
            .instances(80)
            .warmup(20)
            .seed(77)
            .strategy("PCE100".parse().unwrap());
        let cold = base.clone().run(&SimDb::default()).unwrap();
        let cached = base
            .run(&SimDb {
                db: DbConfig::default(),
                shared_query_cache: true,
            })
            .unwrap();
        let (cold_sim, cached_sim) = (cold.sim.unwrap(), cached.sim.unwrap());
        assert_eq!(cold_sim.cache_hits, 0);
        assert!(
            cached_sim.cache_hits > 0,
            "overlapping data must hit the cache"
        );
        assert!(
            cached_sim.mean_gmpl < cold_sim.mean_gmpl,
            "cache offloads the DB: gmpl {} vs {}",
            cached_sim.mean_gmpl,
            cold_sim.mean_gmpl
        );
        assert!(
            cached.responses.mean() < cold.responses.mean(),
            "cache cuts response time: {} vs {}",
            cached.responses.mean(),
            cold.responses.mean()
        );
    }

    /// Parallel strategies beat sequential ones at light load.
    #[test]
    fn parallel_strategy_beats_sequential_at_light_load() {
        let base = Workload::new(flows(3, small()))
            .arrivals(Arrival::Poisson { rate: 1.0 })
            .instances(30)
            .warmup(5)
            .seed(12);
        let seq = base
            .clone()
            .strategy("PCE0".parse().unwrap())
            .run(&SimDb::default())
            .unwrap();
        let par = base
            .strategy("PCE100".parse().unwrap())
            .run(&SimDb::default())
            .unwrap();
        assert!(
            par.responses.mean() < seq.responses.mean(),
            "parallelism wins when the DB is idle: {} vs {}",
            par.responses.mean(),
            seq.responses.mean()
        );
    }

    /// Work on the unit-time backend predicts work on the simulated
    /// database closely (same engine, different clock; exact equality
    /// is not guaranteed — unneeded-pruning races launches under
    /// simulated timing, and speculation is timing-dependent by
    /// design).
    #[test]
    fn unit_and_simdb_agree_on_work() {
        let w = Workload::new(flows(2, small()))
            .instances(8)
            .arrivals(Arrival::Closed {
                clients: 1,
                waves: 8,
            })
            .strategy("PCE100".parse().unwrap());
        let unit = w.run(&UnitTime::checked()).unwrap();
        let sim = w.run(&SimDb::default()).unwrap();
        let rel = (unit.mean_work() - sim.mean_work()).abs() / unit.mean_work();
        assert!(
            rel < 0.2,
            "unit {} vs simdb {}",
            unit.mean_work(),
            sim.mean_work()
        );
    }
}

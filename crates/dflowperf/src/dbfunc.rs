//! The empirical `Db` function: Gmpl → response time per unit of
//! processing.
//!
//! The analytical model of §5 takes `Db` as an input, "empirically
//! determined for each database" (Figure 9(a)). This module wraps a set
//! of measured points into a monotone piecewise-linear function with
//! linear extrapolation above the last measured level.

use serde::{Deserialize, Serialize};
use simdb::DbPoint;

/// Monotone piecewise-linear interpolation of measured `Db` points.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DbFunction {
    /// (gmpl, unit_time_ms), sorted by gmpl, strictly increasing gmpl.
    points: Vec<(f64, f64)>,
}

impl DbFunction {
    /// Build from measured points. Requires at least one point; points
    /// are sorted and the unit times are made monotone non-decreasing
    /// (isotonic clamp) so the fixed-point solver is well behaved.
    pub fn from_points(raw: &[DbPoint]) -> DbFunction {
        assert!(!raw.is_empty(), "Db function needs at least one point");
        let mut pts: Vec<(f64, f64)> = raw.iter().map(|p| (p.gmpl, p.unit_time_ms)).collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite gmpl"));
        pts.dedup_by(|a, b| a.0 == b.0);
        // Isotonic clamp: measurement noise can produce tiny dips.
        for i in 1..pts.len() {
            if pts[i].1 < pts[i - 1].1 {
                pts[i].1 = pts[i - 1].1;
            }
        }
        DbFunction { points: pts }
    }

    /// Response time per unit of processing at multiprogramming level
    /// `gmpl`, in milliseconds.
    pub fn unit_time_ms(&self, gmpl: f64) -> f64 {
        let pts = &self.points;
        if gmpl <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if gmpl <= x1 {
                return y0 + (y1 - y0) * (gmpl - x0) / (x1 - x0);
            }
        }
        // Extrapolate with the slope of the last segment (or flat if
        // only one point was measured).
        let n = pts.len();
        if n == 1 {
            return pts[0].1;
        }
        let (x0, y0) = pts[n - 2];
        let (x1, y1) = pts[n - 1];
        y1 + (y1 - y0) / (x1 - x0) * (gmpl - x1)
    }

    /// Measured anchor points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(u32, f64)]) -> Vec<DbPoint> {
        v.iter()
            .map(|&(g, t)| DbPoint {
                gmpl: g as f64,
                unit_time_ms: t,
            })
            .collect()
    }

    #[test]
    fn interpolates_between_anchors() {
        let f = DbFunction::from_points(&pts(&[(1, 10.0), (11, 30.0)]));
        assert!((f.unit_time_ms(6.0) - 20.0).abs() < 1e-9);
        assert!((f.unit_time_ms(1.0) - 10.0).abs() < 1e-9);
        assert!((f.unit_time_ms(11.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_below_first_point() {
        let f = DbFunction::from_points(&pts(&[(4, 12.0), (8, 20.0)]));
        assert_eq!(f.unit_time_ms(0.5), 12.0);
        assert_eq!(f.unit_time_ms(-3.0), 12.0);
    }

    #[test]
    fn extrapolates_last_slope() {
        let f = DbFunction::from_points(&pts(&[(1, 10.0), (2, 12.0), (4, 20.0)]));
        // Last segment slope: (20-12)/(4-2)=4 per gmpl.
        assert!((f.unit_time_ms(6.0) - 28.0).abs() < 1e-9);
    }

    #[test]
    fn single_point_is_flat() {
        let f = DbFunction::from_points(&pts(&[(5, 14.0)]));
        assert_eq!(f.unit_time_ms(1.0), 14.0);
        assert_eq!(f.unit_time_ms(50.0), 14.0);
    }

    #[test]
    fn isotonic_clamp_fixes_noise_dips() {
        let f = DbFunction::from_points(&pts(&[(1, 10.0), (2, 9.5), (3, 15.0)]));
        assert!(f.unit_time_ms(2.0) >= 10.0);
        // Monotone overall.
        let mut last = 0.0;
        for g in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 5.0] {
            let v = f.unit_time_ms(g);
            assert!(v >= last, "Db must be non-decreasing");
            last = v;
        }
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let f = DbFunction::from_points(&pts(&[(8, 20.0), (1, 10.0)]));
        assert_eq!(f.points()[0].0, 1.0);
        assert!((f.unit_time_ms(4.5) - 15.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_rejected() {
        DbFunction::from_points(&[]);
    }
}

//! Finite-resource execution: decision-flow instances against the
//! simulated database under an open Poisson arrival stream — and
//! against the real sharded [`EngineServer`].
//!
//! [`run_open_load`] is the paper's final experimental setting (§5,
//! "An Analytical Model for Finite Database Resources"): instances
//! arrive at `Th` per second, every launched task becomes a query on
//! the shared [`SimDb`], and response time is measured in **seconds**
//! (well, milliseconds here) rather than abstract units. The engine
//! logic is exactly the same [`InstanceRuntime`] used by the unit-time
//! executor — only the clock and the contention model differ.
//!
//! [`run_server_load`] drives the same generated flows through the
//! *real* sharded multi-threaded server instead of the virtual-time
//! simulation: batched submissions, wall-clock latency, and per-shard
//! queue/in-flight statistics, so Table-1/Fig-5 style sweeps can
//! exercise the threading harness end to end.
//!
//! [`EngineServer`]: decisionflow::server::EngineServer

use std::collections::HashMap;
use std::time::{Duration, Instant};

use decisionflow::api::Request;
use decisionflow::engine::{scheduler, InstanceRuntime, ServerStats, Strategy};
use decisionflow::schema::AttrId;
use decisionflow::server::{EngineServer, ServerBuildError};
use decisionflow::value::Value;
use desim::{exp_time, Model, Scheduler, SimTime, Simulation, Tally};
use dflowgen::GeneratedFlow;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simdb::{DbConfig, DbEvent, QueryJob, SimDb};

/// Open-load experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Instance arrival rate, per second (the paper's `Th`).
    pub arrival_rate_per_sec: f64,
    /// Number of instances to run in total.
    pub total_instances: usize,
    /// Instances excluded from statistics at the start (warmup).
    pub warmup_instances: usize,
    /// RNG seed (arrivals + database stochastics).
    pub seed: u64,
    /// Share query results across instances (the paper's concluding
    /// question: "how to optimize when several decision flows will be
    /// executed based on overlapping data"). When enabled, a query
    /// whose (attribute, input values) pair was already answered is
    /// served from a shared cache instead of hitting the database.
    pub shared_query_cache: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            arrival_rate_per_sec: 10.0,
            total_instances: 300,
            warmup_instances: 50,
            seed: 1,
            shared_query_cache: false,
        }
    }
}

/// Measured outcome of an open-load run.
#[derive(Clone, Debug)]
pub struct LoadOutcome {
    /// Per-instance response times, milliseconds (post-warmup).
    pub responses_ms: Tally,
    /// Per-instance work, units of processing (post-warmup).
    pub work_units: Tally,
    /// Time-averaged global multiprogramming level of the database.
    pub mean_gmpl: f64,
    /// Mean database response time per unit of processing (ms) over
    /// the run — the realized `UnitTime`.
    pub mean_unit_time_ms: f64,
    /// Instances completed.
    pub completed: usize,
    /// Queries answered from the shared cache (0 unless enabled).
    pub cache_hits: u64,
    /// Total virtual time of the run.
    pub makespan: SimTime,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Arrive,
    Db(DbEvent),
}

struct InstSlot {
    rt: InstanceRuntime,
    arrived: SimTime,
    done: bool,
}

struct Driver<'a> {
    flows: &'a [GeneratedFlow],
    strategy: Strategy,
    db: SimDb,
    insts: Vec<InstSlot>,
    /// job id → (instance index, attribute, precomputed result value).
    jobs: HashMap<u64, (usize, AttrId, Value)>,
    next_job: u64,
    cfg: LoadConfig,
    rng: StdRng,
    responses: Tally,
    works: Tally,
    completed: usize,
    /// (flow replica, attribute, input fingerprint) → cached result.
    cache: HashMap<(usize, u32, u64), Value>,
    cache_hits: u64,
}

fn inputs_fingerprint(inputs: &[Value]) -> u64 {
    let mut h = 0xCAFE_F00Du64;
    for v in inputs {
        h = h.rotate_left(17) ^ v.fingerprint();
    }
    h
}

impl Driver<'_> {
    /// Launch everything the scheduler allows for instance `i`;
    /// zero-cost tasks complete inline, possibly enabling more
    /// launches, so iterate to quiescence.
    fn pump(&mut self, i: usize, sched: &mut Scheduler<Ev>) {
        loop {
            if self.insts[i].done {
                return;
            }
            let slot = &mut self.insts[i];
            let schema = std::sync::Arc::clone(slot.rt.schema());
            let in_flight = slot.rt.in_flight_count();
            let cands = slot.rt.candidates();
            let picks = scheduler::select(&schema, self.strategy, cands, in_flight);
            if picks.is_empty() {
                break;
            }
            let mut immediate = Vec::new();
            for a in picks {
                let flow_idx = i % self.flows.len();
                let slot = &mut self.insts[i];
                let inputs = slot.rt.launch(a);
                let schema = slot.rt.schema();
                let value = schema.attr(a).task.compute(&inputs);
                let cost = schema.cost(a);
                if self.cfg.shared_query_cache {
                    let key = (flow_idx, a.index() as u32, inputs_fingerprint(&inputs));
                    if let Some(hit) = self.cache.get(&key) {
                        // Overlapping data: the answer is known; skip
                        // the database round-trip entirely.
                        self.cache_hits += 1;
                        immediate.push((a, hit.clone()));
                        continue;
                    }
                    self.cache.insert(key, value.clone());
                }
                let id = self.next_job;
                self.next_job += 1;
                let job = QueryJob { id, cost };
                match self.db.submit(job, sched, &Ev::Db) {
                    Some(_c) => immediate.push((a, value)),
                    None => {
                        self.jobs.insert(id, (i, a, value));
                    }
                }
            }
            for (a, v) in immediate {
                self.insts[i].rt.complete(a, v);
            }
            self.check_done(i, sched);
        }
        self.check_done(i, sched);
    }

    fn check_done(&mut self, i: usize, sched: &mut Scheduler<Ev>) {
        let slot = &mut self.insts[i];
        if !slot.done && slot.rt.is_complete() {
            slot.done = true;
            let resp = sched.now().saturating_sub(slot.arrived);
            if i >= self.cfg.warmup_instances {
                self.responses.add(resp.as_millis_f64());
                self.works.add(slot.rt.metrics().work as f64);
            }
            self.completed += 1;
            if self.completed == self.cfg.total_instances {
                sched.stop();
            }
        }
    }
}

impl Model for Driver<'_> {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Arrive => {
                let i = self.insts.len();
                let flow = &self.flows[i % self.flows.len()];
                let rt = InstanceRuntime::new(
                    std::sync::Arc::clone(&flow.schema),
                    self.strategy,
                    &flow.sources,
                )
                .expect("generated flows bind all sources");
                self.insts.push(InstSlot {
                    rt,
                    arrived: sched.now(),
                    done: false,
                });
                if self.insts.len() < self.cfg.total_instances {
                    let mean = SimTime::from_secs_f64(1.0 / self.cfg.arrival_rate_per_sec);
                    let gap = exp_time(&mut self.rng, mean);
                    sched.schedule_in(gap, Ev::Arrive);
                }
                self.pump(i, sched);
            }
            Ev::Db(dbev) => {
                if let Some(c) = self.db.handle(dbev, sched, &Ev::Db) {
                    let (i, attr, value) = self
                        .jobs
                        .remove(&c.job.id)
                        .expect("completion for unknown job");
                    self.insts[i].rt.complete(attr, value);
                    self.check_done(i, sched);
                    self.pump(i, sched);
                }
            }
        }
    }
}

/// Run an open-load experiment: Poisson arrivals over the given flow
/// replicas (round-robin), one shared simulated database.
pub fn run_open_load(
    flows: &[GeneratedFlow],
    strategy: Strategy,
    db_cfg: DbConfig,
    cfg: LoadConfig,
) -> LoadOutcome {
    assert!(!flows.is_empty(), "need at least one flow");
    assert!(cfg.total_instances > 0, "need at least one instance");
    assert!(
        cfg.warmup_instances < cfg.total_instances,
        "warmup must leave instances to measure"
    );
    assert!(
        cfg.arrival_rate_per_sec > 0.0,
        "arrival rate must be positive"
    );
    let driver = Driver {
        flows,
        strategy,
        db: SimDb::new(db_cfg, cfg.seed.wrapping_mul(0x9E37_79B9)),
        insts: Vec::with_capacity(cfg.total_instances),
        jobs: HashMap::new(),
        next_job: 0,
        cfg,
        rng: StdRng::seed_from_u64(cfg.seed),
        responses: Tally::new(),
        works: Tally::new(),
        completed: 0,
        cache: HashMap::new(),
        cache_hits: 0,
    };
    let mut sim = Simulation::new(driver);
    sim.prime(SimTime::ZERO, Ev::Arrive);
    // A stop is requested when the last instance completes; Exhausted
    // can only happen if every instance finished with no events left
    // (e.g. all targets disabled at init).
    let _ = sim.run();
    let makespan = sim.now();
    let d = sim.into_model();
    assert_eq!(
        d.completed, d.cfg.total_instances,
        "run ended before all instances completed"
    );
    LoadOutcome {
        responses_ms: d.responses,
        work_units: d.works,
        mean_gmpl: d.db.mean_gmpl(),
        mean_unit_time_ms: d.db.unit_times().mean() * 1e3,
        completed: d.completed,
        cache_hits: d.cache_hits,
        makespan,
    }
}

/// Configuration for [`run_server_load`]: closed-loop waves of batched
/// submissions against the real sharded [`EngineServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServerLoadConfig {
    /// Number of shards (`0` = the machine's available parallelism).
    pub shards: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Instances per `submit_many` wave; the driver waits for a wave
    /// before submitting the next, keeping the backlog bounded.
    pub batch: usize,
    /// Number of instances to run in total.
    pub total_instances: usize,
    /// Instances excluded from statistics at the start (warmup).
    pub warmup_instances: usize,
}

impl Default for ServerLoadConfig {
    fn default() -> Self {
        ServerLoadConfig {
            shards: 0,
            workers_per_shard: 1,
            batch: 32,
            total_instances: 256,
            warmup_instances: 32,
        }
    }
}

/// Measured outcome of a [`run_server_load`] run.
#[derive(Clone, Debug)]
pub struct ServerLoadOutcome {
    /// Per-instance wall-clock response times, milliseconds
    /// (post-warmup; submission → target stabilization).
    pub responses_ms: Tally,
    /// Per-instance work, units of processing (post-warmup).
    pub work_units: Tally,
    /// Instances completed.
    pub completed: usize,
    /// Distinct shards that executed at least one instance.
    pub shards_used: usize,
    /// Wall-clock duration of the whole run, warmup included.
    pub wall: Duration,
    /// Post-warmup completed instances per post-warmup wall-clock
    /// second: server construction and the warmup waves are excluded,
    /// mirroring the `responses_ms` cut.
    pub throughput_per_sec: f64,
    /// Final per-shard statistics snapshot.
    pub stats: ServerStats,
}

/// Drive generated flows (round-robin replicas) through the real
/// sharded [`EngineServer`]: submissions go in `batch`-sized waves via
/// `submit_many` ([`Request`]s built per instance), every wave is
/// awaited before the next, and wall-clock latency, throughput, and
/// the final [`ServerStats`] are reported. The driver deliberately
/// does *not* subscribe to `ServerEvents`: a subscription puts every
/// lifecycle transition through the server-wide event hub, which would
/// contend exactly the cross-shard hot path this harness measures
/// (event-stream consumers are pollers and open-arrival pacers, not
/// throughput benchmarks). The thread-spawn failure path of server
/// construction is propagated, not panicked.
pub fn run_server_load(
    flows: &[GeneratedFlow],
    strategy: Strategy,
    cfg: ServerLoadConfig,
) -> Result<ServerLoadOutcome, ServerBuildError> {
    assert!(!flows.is_empty(), "need at least one flow");
    assert!(cfg.total_instances > 0, "need at least one instance");
    assert!(
        cfg.warmup_instances < cfg.total_instances,
        "warmup must leave instances to measure"
    );
    assert!(cfg.batch > 0, "batch must be positive");
    let shards = if cfg.shards == 0 {
        EngineServer::default_shard_count()
    } else {
        cfg.shards
    };
    assert!(
        cfg.workers_per_shard > 0,
        "workers_per_shard must be positive"
    );
    let server = EngineServer::with_shards(shards, cfg.workers_per_shard, strategy)?;
    let names: Vec<String> = (0..flows.len()).map(|i| format!("flow{i}")).collect();
    for (name, flow) in names.iter().zip(flows) {
        server.register(name, std::sync::Arc::clone(&flow.schema));
    }
    let mut responses = Tally::new();
    let mut works = Tally::new();
    let mut shards_seen = std::collections::HashSet::new();
    let mut completed = 0usize;
    let mut measured = 0usize;
    let t0 = Instant::now();
    // Starts when the first wave containing a post-warmup instance is
    // submitted, so the throughput window covers every measured
    // instance but neither server construction nor pure-warmup waves.
    let mut measure_t0: Option<Instant> = None;
    let mut next = 0usize;
    while next < cfg.total_instances {
        let wave = cfg.batch.min(cfg.total_instances - next);
        if measure_t0.is_none() && next + wave > cfg.warmup_instances {
            measure_t0 = Some(Instant::now());
        }
        let tickets = server
            .submit_many((0..wave).map(|k| {
                let i = next + k;
                let flow = &flows[i % flows.len()];
                Request::named(&names[i % flows.len()]).sources(flow.sources.clone())
            }))
            .expect("registered schemas with bound sources");
        for (k, t) in tickets.into_iter().enumerate() {
            let r = t.wait().expect("server alive for the whole run");
            shards_seen.insert(r.shard);
            if next + k >= cfg.warmup_instances {
                responses.add(r.elapsed.as_secs_f64() * 1e3);
                works.add(r.record.metrics.work as f64);
                measured += 1;
            }
            completed += 1;
        }
        next += wave;
    }
    let wall = t0.elapsed();
    let measured_wall = measure_t0.map(|t| t.elapsed()).unwrap_or(wall);
    Ok(ServerLoadOutcome {
        responses_ms: responses,
        work_units: works,
        completed,
        shards_used: shards_seen.len(),
        wall,
        throughput_per_sec: measured as f64 / measured_wall.as_secs_f64().max(1e-9),
        stats: server.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dflowgen::{generate, PatternParams};

    fn flows(n: u64, params: PatternParams) -> Vec<GeneratedFlow> {
        (0..n)
            .map(|i| generate(params, 1000 + i).unwrap())
            .collect()
    }

    fn small() -> PatternParams {
        PatternParams {
            nb_nodes: 16,
            nb_rows: 4,
            pct_enabled: 75,
            ..Default::default()
        }
    }

    #[test]
    fn completes_all_instances() {
        let fl = flows(4, small());
        let out = run_open_load(
            &fl,
            "PCE100".parse().unwrap(),
            DbConfig::default(),
            LoadConfig {
                arrival_rate_per_sec: 5.0,
                total_instances: 40,
                warmup_instances: 10,
                seed: 3,
                shared_query_cache: false,
            },
        );
        assert_eq!(out.completed, 40);
        assert_eq!(out.responses_ms.count(), 30, "post-warmup instances");
        assert!(out.responses_ms.mean() > 0.0);
        assert!(out.mean_gmpl > 0.0);
        assert!(out.makespan > SimTime::ZERO);
    }

    #[test]
    fn deterministic_under_seed() {
        let fl = flows(2, small());
        let cfg = LoadConfig {
            arrival_rate_per_sec: 5.0,
            total_instances: 20,
            warmup_instances: 5,
            seed: 9,
            shared_query_cache: false,
        };
        let a = run_open_load(&fl, "PSE100".parse().unwrap(), DbConfig::default(), cfg);
        let b = run_open_load(&fl, "PSE100".parse().unwrap(), DbConfig::default(), cfg);
        assert_eq!(a.responses_ms.mean(), b.responses_ms.mean());
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn higher_load_raises_response_time() {
        let fl = flows(3, small());
        let base = LoadConfig {
            arrival_rate_per_sec: 2.0,
            total_instances: 60,
            warmup_instances: 15,
            seed: 5,
            shared_query_cache: false,
        };
        let quiet = run_open_load(&fl, "PCE100".parse().unwrap(), DbConfig::default(), base);
        let busy = run_open_load(
            &fl,
            "PCE100".parse().unwrap(),
            DbConfig::default(),
            LoadConfig {
                arrival_rate_per_sec: 25.0,
                ..base
            },
        );
        assert!(
            busy.responses_ms.mean() > quiet.responses_ms.mean(),
            "contention must raise response: {} vs {}",
            busy.responses_ms.mean(),
            quiet.responses_ms.mean()
        );
        assert!(busy.mean_gmpl > quiet.mean_gmpl);
    }

    #[test]
    fn parallel_strategy_beats_sequential_at_light_load() {
        let fl = flows(3, small());
        let cfg = LoadConfig {
            arrival_rate_per_sec: 1.0,
            total_instances: 30,
            warmup_instances: 5,
            seed: 12,
            shared_query_cache: false,
        };
        let seq = run_open_load(&fl, "PCE0".parse().unwrap(), DbConfig::default(), cfg);
        let par = run_open_load(&fl, "PCE100".parse().unwrap(), DbConfig::default(), cfg);
        assert!(
            par.responses_ms.mean() < seq.responses_ms.mean(),
            "parallelism wins when the DB is idle: {} vs {}",
            par.responses_ms.mean(),
            seq.responses_ms.mean()
        );
    }

    #[test]
    fn shared_cache_offloads_the_database() {
        // One flow replica + identical sources per instance: every
        // query after the first instance is answerable from cache.
        let fl = flows(1, small());
        let base = LoadConfig {
            arrival_rate_per_sec: 6.0,
            total_instances: 80,
            warmup_instances: 20,
            seed: 77,
            shared_query_cache: false,
        };
        let cold = run_open_load(&fl, "PCE100".parse().unwrap(), DbConfig::default(), base);
        let cached = run_open_load(
            &fl,
            "PCE100".parse().unwrap(),
            DbConfig::default(),
            LoadConfig {
                shared_query_cache: true,
                ..base
            },
        );
        assert_eq!(cold.cache_hits, 0);
        assert!(cached.cache_hits > 0, "overlapping data must hit the cache");
        assert!(
            cached.mean_gmpl < cold.mean_gmpl,
            "cache offloads the DB: gmpl {} vs {}",
            cached.mean_gmpl,
            cold.mean_gmpl
        );
        assert!(
            cached.responses_ms.mean() < cold.responses_ms.mean(),
            "cache cuts response time: {} vs {}",
            cached.responses_ms.mean(),
            cold.responses_ms.mean()
        );
    }

    #[test]
    fn server_load_completes_and_spreads_over_shards() {
        let fl = flows(3, small());
        let out = run_server_load(
            &fl,
            "PSE100".parse().unwrap(),
            ServerLoadConfig {
                shards: 4,
                workers_per_shard: 1,
                batch: 16,
                total_instances: 64,
                warmup_instances: 8,
            },
        )
        .unwrap();
        assert_eq!(out.completed, 64);
        assert_eq!(out.responses_ms.count(), 56, "post-warmup instances");
        assert!(out.shards_used >= 2, "instances must land on ≥2 shards");
        assert!(out.throughput_per_sec > 0.0);
        assert_eq!(out.stats.shard_count(), 4);
        assert_eq!(out.stats.completed(), 64);
        assert_eq!(out.stats.in_flight(), 0);
        assert_eq!(out.stats.queued_jobs(), 0);
    }

    #[test]
    #[should_panic(expected = "warmup must leave")]
    fn server_load_bad_warmup_rejected() {
        let fl = flows(1, small());
        let _ = run_server_load(
            &fl,
            "PCE0".parse().unwrap(),
            ServerLoadConfig {
                total_instances: 5,
                warmup_instances: 5,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "warmup must leave")]
    fn bad_warmup_rejected() {
        let fl = flows(1, small());
        run_open_load(
            &fl,
            "PCE0".parse().unwrap(),
            DbConfig::default(),
            LoadConfig {
                total_instances: 5,
                warmup_instances: 5,
                ..Default::default()
            },
        );
    }
}

//! Legacy finite-resource drivers — thin, deprecated wrappers over the
//! unified [`Workload`] surface (see [`crate::workload`]).
//!
//! `run_open_load` and `run_server_load` each carried their own config
//! and outcome structs; both are now one-line translations onto
//! [`Workload`] + a [`Backend`](crate::Backend) and will be removed
//! after their one-release grace period. New code should build a
//! [`Workload`] directly:
//!
//! ```
//! use dflowperf::{Arrival, SimDb, Workload};
//! use dflowgen::{generate, PatternParams};
//!
//! let flow = generate(PatternParams { nb_nodes: 16, nb_rows: 4, ..Default::default() }, 1).unwrap();
//! let report = Workload::new(vec![flow])
//!     .arrivals(Arrival::Poisson { rate: 5.0 })
//!     .instances(40)
//!     .warmup(10)
//!     .seed(3)
//!     .strategy("PCE100".parse().unwrap())
//!     .run(&SimDb::default())
//!     .unwrap();
//! assert_eq!(report.completed, 40);
//! ```

#![allow(deprecated)]

use std::time::Duration;

use decisionflow::engine::{ServerStats, Strategy};
use decisionflow::server::ServerBuildError;
use desim::{SimTime, Tally};
use dflowgen::GeneratedFlow;
use simdb::DbConfig;

use crate::workload::{Arrival, Server, SimDb, Workload};

/// Open-load experiment configuration.
#[deprecated(
    since = "0.2.0",
    note = "build a Workload with .arrivals(Arrival::Poisson{..}) instead"
)]
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Instance arrival rate, per second (the paper's `Th`).
    pub arrival_rate_per_sec: f64,
    /// Number of instances to run in total.
    pub total_instances: usize,
    /// Instances excluded from statistics at the start (warmup).
    pub warmup_instances: usize,
    /// RNG seed (arrivals + database stochastics).
    pub seed: u64,
    /// Share query results across instances (see
    /// [`SimDb::shared_query_cache`]).
    pub shared_query_cache: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            arrival_rate_per_sec: 10.0,
            total_instances: 300,
            warmup_instances: 50,
            seed: 1,
            shared_query_cache: false,
        }
    }
}

/// Measured outcome of an open-load run.
#[deprecated(since = "0.2.0", note = "use LoadReport (Workload::run)")]
#[derive(Clone, Debug)]
pub struct LoadOutcome {
    /// Per-instance response times, milliseconds (post-warmup).
    pub responses_ms: Tally,
    /// Per-instance work, units of processing (post-warmup).
    pub work_units: Tally,
    /// Time-averaged global multiprogramming level of the database.
    pub mean_gmpl: f64,
    /// Mean database response time per unit of processing (ms) over
    /// the run — the realized `UnitTime`.
    pub mean_unit_time_ms: f64,
    /// Instances completed.
    pub completed: usize,
    /// Queries answered from the shared cache (0 unless enabled).
    pub cache_hits: u64,
    /// Total virtual time of the run.
    pub makespan: SimTime,
}

/// Run an open-load experiment: Poisson arrivals over the given flow
/// replicas (round-robin), one shared simulated database.
#[deprecated(
    since = "0.2.0",
    note = "use Workload::new(flows).arrivals(Arrival::Poisson{rate}).run(&SimDb{..})"
)]
pub fn run_open_load(
    flows: &[GeneratedFlow],
    strategy: Strategy,
    db_cfg: DbConfig,
    cfg: LoadConfig,
) -> LoadOutcome {
    let report = Workload::new(flows.to_vec())
        .arrivals(Arrival::Poisson {
            rate: cfg.arrival_rate_per_sec,
        })
        .instances(cfg.total_instances)
        .warmup(cfg.warmup_instances)
        .seed(cfg.seed)
        .strategy(strategy)
        .run(&SimDb {
            db: db_cfg,
            shared_query_cache: cfg.shared_query_cache,
        })
        .unwrap_or_else(|e| panic!("{e}"));
    let sim = report.sim.expect("simdb backend reports database stats");
    LoadOutcome {
        responses_ms: report.responses,
        work_units: report.work,
        mean_gmpl: sim.mean_gmpl,
        mean_unit_time_ms: sim.mean_unit_time_ms,
        completed: report.completed,
        cache_hits: sim.cache_hits,
        makespan: sim.makespan,
    }
}

/// Configuration for [`run_server_load`]: closed-loop waves of batched
/// submissions against the real sharded `EngineServer`.
#[deprecated(
    since = "0.2.0",
    note = "build a Workload with .arrivals(Arrival::Closed{..}) and the Server backend"
)]
#[derive(Clone, Copy, Debug)]
pub struct ServerLoadConfig {
    /// Number of shards (`0` = the machine's available parallelism).
    pub shards: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Instances per `submit_many` wave; the driver waits for a wave
    /// before submitting the next, keeping the backlog bounded.
    pub batch: usize,
    /// Number of instances to run in total.
    pub total_instances: usize,
    /// Instances excluded from statistics at the start (warmup).
    pub warmup_instances: usize,
}

impl Default for ServerLoadConfig {
    fn default() -> Self {
        ServerLoadConfig {
            shards: 0,
            workers_per_shard: 1,
            batch: 32,
            total_instances: 256,
            warmup_instances: 32,
        }
    }
}

/// Measured outcome of a [`run_server_load`] run.
#[deprecated(since = "0.2.0", note = "use LoadReport (Workload::run)")]
#[derive(Clone, Debug)]
pub struct ServerLoadOutcome {
    /// Per-instance wall-clock response times, milliseconds
    /// (post-warmup; submission → target stabilization).
    pub responses_ms: Tally,
    /// Per-instance work, units of processing (post-warmup).
    pub work_units: Tally,
    /// Instances completed.
    pub completed: usize,
    /// Distinct shards that executed at least one instance.
    pub shards_used: usize,
    /// Wall-clock duration of the whole run, warmup included.
    pub wall: Duration,
    /// Post-warmup completed instances per post-warmup wall-clock
    /// second.
    pub throughput_per_sec: f64,
    /// Final per-shard statistics snapshot.
    pub stats: ServerStats,
}

/// Drive generated flows (round-robin replicas) through the real
/// sharded `EngineServer` in closed batched waves.
#[deprecated(
    since = "0.2.0",
    note = "use Workload::new(flows).arrivals(Arrival::Closed{clients, ..}).run(&Server{..})"
)]
pub fn run_server_load(
    flows: &[GeneratedFlow],
    strategy: Strategy,
    cfg: ServerLoadConfig,
) -> Result<ServerLoadOutcome, ServerBuildError> {
    assert!(cfg.batch > 0, "batch must be positive");
    let report = Workload::new(flows.to_vec())
        .arrivals(Arrival::Closed {
            clients: cfg.batch,
            waves: 0,
        })
        .instances(cfg.total_instances)
        .warmup(cfg.warmup_instances)
        .strategy(strategy)
        .run(&Server {
            shards: cfg.shards,
            workers_per_shard: cfg.workers_per_shard,
        })
        .map_err(|e| match e {
            crate::workload::LoadError::Build(b) => b,
            other => panic!("{other}"),
        })?;
    let side = report
        .server
        .expect("server backend reports shard statistics");
    Ok(ServerLoadOutcome {
        responses_ms: report.responses,
        work_units: report.work,
        completed: report.completed,
        shards_used: side.shards_used,
        wall: report.wall,
        throughput_per_sec: report.throughput_per_sec,
        stats: side.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::UnitTime;
    use dflowgen::{generate, PatternParams};

    fn flows(n: u64, params: PatternParams) -> Vec<GeneratedFlow> {
        (0..n)
            .map(|i| generate(params, 1000 + i).unwrap())
            .collect()
    }

    fn small() -> PatternParams {
        PatternParams {
            nb_nodes: 16,
            nb_rows: 4,
            pct_enabled: 75,
            ..Default::default()
        }
    }

    /// The deprecated open-load wrapper is a faithful translation: it
    /// reports exactly what the unified surface reports.
    #[test]
    fn open_load_wrapper_matches_workload() {
        let fl = flows(4, small());
        let cfg = LoadConfig {
            arrival_rate_per_sec: 5.0,
            total_instances: 40,
            warmup_instances: 10,
            seed: 3,
            shared_query_cache: false,
        };
        let legacy = run_open_load(&fl, "PCE100".parse().unwrap(), DbConfig::default(), cfg);
        let report = Workload::new(fl)
            .arrivals(Arrival::Poisson { rate: 5.0 })
            .instances(40)
            .warmup(10)
            .seed(3)
            .strategy("PCE100".parse().unwrap())
            .run(&SimDb::default())
            .unwrap();
        assert_eq!(legacy.completed, report.completed);
        assert_eq!(legacy.responses_ms.count(), report.responses.count());
        assert_eq!(legacy.responses_ms.mean(), report.responses.mean());
        assert_eq!(legacy.makespan, report.sim.unwrap().makespan);
    }

    #[test]
    fn server_load_wrapper_completes() {
        let fl = flows(3, small());
        let out = run_server_load(
            &fl,
            "PSE100".parse().unwrap(),
            ServerLoadConfig {
                shards: 4,
                workers_per_shard: 1,
                batch: 16,
                total_instances: 64,
                warmup_instances: 8,
            },
        )
        .unwrap();
        assert_eq!(out.completed, 64);
        assert_eq!(out.responses_ms.count(), 56, "post-warmup instances");
        assert!(out.shards_used >= 2, "instances must land on ≥2 shards");
        assert!(out.throughput_per_sec > 0.0);
        assert_eq!(out.stats.shard_count(), 4);
        assert_eq!(out.stats.completed(), 64);
        assert_eq!(out.stats.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "warmup must leave")]
    fn bad_warmup_rejected() {
        let fl = flows(1, small());
        run_open_load(
            &fl,
            "PCE0".parse().unwrap(),
            DbConfig::default(),
            LoadConfig {
                total_instances: 5,
                warmup_instances: 5,
                ..Default::default()
            },
        );
    }

    /// The shared query cache still offloads the database through the
    /// unified surface (the paper's concluding "overlapping data"
    /// question) — stated directly on `Workload` + `SimDb`.
    #[test]
    fn shared_cache_offloads_the_database() {
        let fl = flows(1, small());
        let base = Workload::new(fl)
            .arrivals(Arrival::Poisson { rate: 6.0 })
            .instances(80)
            .warmup(20)
            .seed(77)
            .strategy("PCE100".parse().unwrap());
        let cold = base.clone().run(&SimDb::default()).unwrap();
        let cached = base
            .run(&SimDb {
                db: DbConfig::default(),
                shared_query_cache: true,
            })
            .unwrap();
        let (cold_sim, cached_sim) = (cold.sim.unwrap(), cached.sim.unwrap());
        assert_eq!(cold_sim.cache_hits, 0);
        assert!(
            cached_sim.cache_hits > 0,
            "overlapping data must hit the cache"
        );
        assert!(
            cached_sim.mean_gmpl < cold_sim.mean_gmpl,
            "cache offloads the DB: gmpl {} vs {}",
            cached_sim.mean_gmpl,
            cold_sim.mean_gmpl
        );
        assert!(
            cached.responses.mean() < cold.responses.mean(),
            "cache cuts response time: {} vs {}",
            cached.responses.mean(),
            cold.responses.mean()
        );
    }

    /// Parallel strategies still beat sequential ones at light load on
    /// the unified surface.
    #[test]
    fn parallel_strategy_beats_sequential_at_light_load() {
        let base = Workload::new(flows(3, small()))
            .arrivals(Arrival::Poisson { rate: 1.0 })
            .instances(30)
            .warmup(5)
            .seed(12);
        let seq = base
            .clone()
            .strategy("PCE0".parse().unwrap())
            .run(&SimDb::default())
            .unwrap();
        let par = base
            .strategy("PCE100".parse().unwrap())
            .run(&SimDb::default())
            .unwrap();
        assert!(
            par.responses.mean() < seq.responses.mean(),
            "parallelism wins when the DB is idle: {} vs {}",
            par.responses.mean(),
            seq.responses.mean()
        );
    }

    /// Work on the unit-time backend predicts work on the simulated
    /// database closely (same engine, different clock; exact equality
    /// is not guaranteed — unneeded-pruning races launches under
    /// simulated timing, and speculation is timing-dependent by
    /// design).
    #[test]
    fn unit_and_simdb_agree_on_work() {
        let w = Workload::new(flows(2, small()))
            .instances(8)
            .arrivals(Arrival::Closed {
                clients: 1,
                waves: 8,
            })
            .strategy("PCE100".parse().unwrap());
        let unit = w.run(&UnitTime::checked()).unwrap();
        let sim = w.run(&SimDb::default()).unwrap();
        let rel = (unit.mean_work() - sim.mean_work()).abs() / unit.mean_work();
        assert!(
            rel < 0.2,
            "unit {} vs simdb {}",
            unit.mean_work(),
            sim.mean_work()
        );
    }
}

//! # dflowperf — performance toolkit for decision flows
//!
//! Everything §5 of Hull et al. (ICDE 2000) needs beyond the engine
//! itself:
//!
//! * [`Workload`] — **the one load-generation surface**: flows +
//!   [`Arrival`] process (closed waves or open Poisson) + strategy +
//!   deadline/warmup/seed, executed by a pluggable [`Backend`] —
//!   [`UnitTime`] (infinite-resource virtual clock, Figures 5–8),
//!   [`SimDb`] (finite-resource simulated database, Figure 9(b)), or
//!   [`Server`] (the real sharded `EngineServer`, closed waves *or*
//!   an open pacing loop driven by `ServerEvents` with
//!   `Request::deadline` late-drop accounting) — all reporting one
//!   [`LoadReport`];
//! * [`pattern_sweep`] / [`guideline_for_pattern`] — sweep sugar over
//!   `Workload` for per-pattern figures and guideline maps (Figure 8);
//! * [`DbFunction`] — the empirical `Db` curve (Figure 9(a)),
//!   interpolated from `simdb` measurements;
//! * [`solve_unit_time`], [`max_work_for_throughput`],
//!   [`predict_response_ms`] — the analytical model, Equations (1)–(6).
//!
//! ```
//! use dflowperf::{Arrival, SimDb, UnitTime, Workload};
//! use dflowgen::{generate, PatternParams};
//!
//! let params = PatternParams { nb_nodes: 16, nb_rows: 4, pct_enabled: 75, ..Default::default() };
//! let flows: Vec<_> = (0..3).map(|i| generate(params, 40 + i).unwrap()).collect();
//! let workload = Workload::new(flows)
//!     .arrivals(Arrival::Poisson { rate: 4.0 })
//!     .instances(30)
//!     .warmup(5)
//!     .seed(7)
//!     .strategy("PCE100".parse().unwrap());
//! // Same workload, two execution settings, one report shape.
//! let infinite = workload.run(&UnitTime::checked()).unwrap();
//! let finite = workload.run(&SimDb::default()).unwrap();
//! assert!(infinite.accounts_exactly() && finite.accounts_exactly());
//! assert!(finite.throughput_per_sec > 0.0);
//! ```

#![warn(missing_docs)]

mod dbfunc;
mod guideline;
mod model;
mod sweep;
mod workload;

pub use dbfunc::DbFunction;
pub use guideline::{recommend_program, GuidelineMap, Recommendation, StrategyPoint};
pub use model::{
    max_work_for_throughput, predict_response_ms, solve_unit_time, solve_unit_time_with_lmpl,
    stable_gmpl, UnitTimeSolution,
};
pub use sweep::{guideline_for_pattern, pattern_sweep, pattern_sweep_with_options, portfolio};
pub use workload::{
    Arrival, Backend, LatencyUnit, LoadError, LoadReport, OnServer, Percentiles, PhaseCounts,
    Server, ServerSideStats, SimDb, SimDbStats, UnitTime, Workload,
};

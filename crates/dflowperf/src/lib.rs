//! # dflowperf — performance toolkit for decision flows
//!
//! Everything §5 of Hull et al. (ICDE 2000) needs beyond the engine
//! itself:
//!
//! * [`unit_sweep`] / [`guideline_for_pattern`] — infinite-resource
//!   experiment sweeps (Figures 5–7) and guideline maps (Figure 8);
//! * [`DbFunction`] — the empirical `Db` curve (Figure 9(a)),
//!   interpolated from `simdb` measurements;
//! * [`solve_unit_time`], [`max_work_for_throughput`],
//!   [`predict_response_ms`] — the analytical model, Equations (1)–(6);
//! * [`run_open_load`] — the finite-resource driver: Poisson instance
//!   arrivals over a shared simulated database, measuring
//!   TimeInSeconds (Figure 9(b), graph (d));
//! * [`run_server_load`] — the same generated flows driven through the
//!   real sharded `EngineServer` via the unified `Request`/`Ticket`
//!   API (batched `submit_many` submission, wall-clock latency,
//!   per-shard statistics).
//!
//! ```
//! use dflowperf::{DbFunction, solve_unit_time, max_work_for_throughput};
//! use simdb::DbPoint;
//!
//! let db = DbFunction::from_points(&[
//!     DbPoint { gmpl: 1.0, unit_time_ms: 12.5 },
//!     DbPoint { gmpl: 16.0, unit_time_ms: 45.0 },
//! ]);
//! // At 10 instances/second, how much work per instance can the DB afford?
//! let bound = max_work_for_throughput(&db, 10.0, 10_000);
//! assert!(bound > 0);
//! // And the predicted unit time when each instance performs 20 units:
//! let u = solve_unit_time(&db, 10.0, 20.0).stable_ms().unwrap();
//! assert!(u >= 12.5);
//! ```

#![warn(missing_docs)]

mod dbfunc;
mod driver;
mod guideline;
mod model;
mod sweep;

pub use dbfunc::DbFunction;
pub use driver::{
    run_open_load, run_server_load, LoadConfig, LoadOutcome, ServerLoadConfig, ServerLoadOutcome,
};
pub use guideline::{recommend_program, GuidelineMap, Recommendation, StrategyPoint};
pub use model::{
    max_work_for_throughput, predict_response_ms, solve_unit_time, solve_unit_time_with_lmpl,
    stable_gmpl, UnitTimeSolution,
};
pub use sweep::{
    guideline_for_pattern, portfolio, unit_sweep, unit_sweep_with_options, SweepResult,
};

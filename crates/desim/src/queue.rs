//! FCFS multi-server service centers.
//!
//! A [`ServiceCenter`] models `k` identical servers in front of a single
//! FIFO queue — the building block of the \[ACL87\]-style database model
//! (CPU pool, disk array). The center itself does not know about the
//! event calendar; it answers "when would this job finish?" and the model
//! turns that into a scheduled completion event. This keeps the center
//! reusable under any event alphabet.

use std::collections::VecDeque;

use crate::stats::TimeWeighted;
use crate::time::SimTime;

/// A job waiting in, or being served by, a service center.
#[derive(Clone, Debug)]
struct Waiting<J> {
    job: J,
    service: SimTime,
    enqueued_at: SimTime,
}

/// A job admitted to a server, returned to the caller so it can schedule
/// the completion event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Admission<J> {
    /// The job payload.
    pub job: J,
    /// Absolute completion time.
    pub completes_at: SimTime,
    /// Time the job spent queueing before service began.
    pub queue_wait: SimTime,
}

/// `k`-server FCFS queueing station.
pub struct ServiceCenter<J> {
    servers: usize,
    busy: usize,
    queue: VecDeque<Waiting<J>>,
    // statistics
    pub(crate) util: TimeWeighted,
    pub(crate) qlen: TimeWeighted,
    completed: u64,
    total_service: SimTime,
    total_wait: SimTime,
}

impl<J> ServiceCenter<J> {
    /// Create a center with `servers` identical servers. Panics if zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a service center needs at least one server");
        ServiceCenter {
            servers,
            busy: 0,
            queue: VecDeque::new(),
            util: TimeWeighted::new(),
            qlen: TimeWeighted::new(),
            completed: 0,
            total_service: SimTime::ZERO,
            total_wait: SimTime::ZERO,
        }
    }

    /// Number of servers currently serving a job.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Number of jobs waiting (not yet in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total jobs in the station (waiting + in service).
    pub fn population(&self) -> usize {
        self.busy + self.queue.len()
    }

    /// Jobs that have completed service.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Submit a job requiring `service` time. If a server is free the job
    /// is admitted immediately and the admission (with completion time) is
    /// returned; otherwise the job queues and `None` is returned.
    pub fn submit(&mut self, now: SimTime, job: J, service: SimTime) -> Option<Admission<J>> {
        self.record(now);
        if self.busy < self.servers {
            self.busy += 1;
            self.total_service += service;
            Some(Admission {
                job,
                completes_at: now + service,
                queue_wait: SimTime::ZERO,
            })
        } else {
            self.queue.push_back(Waiting {
                job,
                service,
                enqueued_at: now,
            });
            None
        }
    }

    /// Notify the center that a job finished service at `now`. If a job was
    /// waiting, it is admitted to the freed server and returned so the
    /// caller can schedule its completion event.
    pub fn complete(&mut self, now: SimTime) -> Option<Admission<J>> {
        self.record(now);
        debug_assert!(self.busy > 0, "completion with no busy server");
        self.completed += 1;
        if let Some(w) = self.queue.pop_front() {
            // Server stays busy, next job starts immediately.
            let wait = now.saturating_sub(w.enqueued_at);
            self.total_wait += wait;
            self.total_service += w.service;
            Some(Admission {
                job: w.job,
                completes_at: now + w.service,
                queue_wait: wait,
            })
        } else {
            self.busy -= 1;
            None
        }
    }

    /// Mean server utilization over virtual time (0..=1).
    pub fn utilization(&self) -> f64 {
        self.util.mean() / self.servers as f64
    }

    /// Time-averaged queue length (waiting jobs only).
    pub fn mean_queue_len(&self) -> f64 {
        self.qlen.mean()
    }

    /// Mean queueing delay per completed-or-started job.
    pub fn mean_wait(&self) -> SimTime {
        match self.total_wait.0.checked_div(self.completed) {
            Some(ns) => SimTime(ns),
            None => SimTime::ZERO,
        }
    }

    fn record(&mut self, now: SimTime) {
        self.util.observe(now, self.busy as f64);
        self.qlen.observe(now, self.queue.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes_jobs() {
        let mut c: ServiceCenter<&str> = ServiceCenter::new(1);
        let t0 = SimTime::ZERO;
        let a = c.submit(t0, "a", SimTime::from_millis(10));
        assert_eq!(
            a,
            Some(Admission {
                job: "a",
                completes_at: SimTime::from_millis(10),
                queue_wait: SimTime::ZERO
            })
        );
        // Second job queues.
        assert!(c.submit(t0, "b", SimTime::from_millis(5)).is_none());
        assert_eq!(c.queue_len(), 1);
        // When "a" completes, "b" is admitted with its wait recorded.
        let b = c.complete(SimTime::from_millis(10)).unwrap();
        assert_eq!(b.job, "b");
        assert_eq!(b.completes_at, SimTime::from_millis(15));
        assert_eq!(b.queue_wait, SimTime::from_millis(10));
        assert!(c.complete(SimTime::from_millis(15)).is_none());
        assert_eq!(c.completed(), 2);
        assert_eq!(c.busy(), 0);
    }

    #[test]
    fn multi_server_admits_up_to_k() {
        let mut c: ServiceCenter<u32> = ServiceCenter::new(3);
        let t0 = SimTime::ZERO;
        for i in 0..3 {
            assert!(c.submit(t0, i, SimTime::from_millis(10)).is_some());
        }
        assert_eq!(c.busy(), 3);
        assert!(c.submit(t0, 3, SimTime::from_millis(10)).is_none());
        assert_eq!(c.population(), 4);
    }

    #[test]
    fn fcfs_order_preserved() {
        let mut c: ServiceCenter<u32> = ServiceCenter::new(1);
        c.submit(SimTime::ZERO, 0, SimTime::from_millis(1));
        for i in 1..=5 {
            c.submit(SimTime::ZERO, i, SimTime::from_millis(1));
        }
        let mut order = vec![];
        let mut now = SimTime::from_millis(1);
        let mut next = c.complete(now);
        while let Some(adm) = next {
            order.push(adm.job);
            now = adm.completes_at;
            next = c.complete(now);
        }
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut c: ServiceCenter<&str> = ServiceCenter::new(1);
        // Busy from 0 to 10ms, idle 10..20ms.
        c.submit(SimTime::ZERO, "x", SimTime::from_millis(10));
        c.complete(SimTime::from_millis(10));
        // Touch statistics at 20ms with an idle observation.
        c.submit(SimTime::from_millis(20), "y", SimTime::from_millis(1));
        let u = c.utilization();
        assert!((u - 0.5).abs() < 1e-9, "utilization {u} != 0.5");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _: ServiceCenter<()> = ServiceCenter::new(0);
    }
}

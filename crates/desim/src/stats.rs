//! Statistics accumulators for simulations.

use crate::time::SimTime;

/// Time-weighted average of a piecewise-constant signal.
///
/// Call [`observe`](TimeWeighted::observe) with the *new* value whenever
/// the signal changes; the accumulator integrates the previous value over
/// the elapsed interval.
#[derive(Clone, Debug, Default)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64, // integral of value dt (seconds)
    span: f64,         // total observed seconds
    initialized: bool,
}

impl TimeWeighted {
    /// New, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the signal takes `value` from time `now` onward.
    pub fn observe(&mut self, now: SimTime, value: f64) {
        if self.initialized {
            let dt = now.saturating_sub(self.last_time).as_secs_f64();
            self.weighted_sum += self.last_value * dt;
            self.span += dt;
        } else {
            self.initialized = true;
        }
        self.last_time = now;
        self.last_value = value;
    }

    /// Time-weighted mean over the observed span (0 if nothing observed).
    pub fn mean(&self) -> f64 {
        if self.span <= 0.0 {
            // Degenerate: no elapsed time; report last value if any.
            if self.initialized {
                self.last_value
            } else {
                0.0
            }
        } else {
            self.weighted_sum / self.span
        }
    }

    /// Total virtual time covered by observations, in seconds.
    pub fn span_secs(&self) -> f64 {
        self.span
    }
}

/// Plain sample statistics: count / mean / min / max (Welford variance).
#[derive(Clone, Debug, Default)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// New, empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        if self.n == 1 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Add a `SimTime` sample, in seconds.
    pub fn add_time(&mut self, t: SimTime) {
        self.add(t.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_square_wave() {
        let mut tw = TimeWeighted::new();
        tw.observe(SimTime::ZERO, 0.0);
        tw.observe(SimTime::from_secs(1), 10.0); // 0 for 1s
        tw.observe(SimTime::from_secs(3), 0.0); // 10 for 2s
        tw.observe(SimTime::from_secs(4), 0.0); // 0 for 1s
                                                // integral = 0*1 + 10*2 + 0*1 = 20 over 4s
        assert!((tw.mean() - 5.0).abs() < 1e-9);
        assert!((tw.span_secs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_empty_and_degenerate() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.mean(), 0.0);
        let mut tw2 = TimeWeighted::new();
        tw2.observe(SimTime::from_secs(5), 42.0);
        assert_eq!(tw2.mean(), 42.0, "no elapsed span: report last value");
    }

    #[test]
    fn tally_basic_moments() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.add(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 9.0);
    }

    #[test]
    fn tally_merge_matches_pooled() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Tally::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &xs[..20] {
            a.add(x);
        }
        for &x in &xs[20..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn tally_merge_with_empty() {
        let mut a = Tally::new();
        a.add(3.0);
        let empty = Tally::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
        let mut e2 = Tally::new();
        e2.merge(&a);
        assert_eq!(e2.count(), 1);
        assert_eq!(e2.mean(), 3.0);
    }
}

//! # desim — a small discrete-event simulation kernel
//!
//! This crate replaces the role CSIM-18 plays in Hull et al. (ICDE 2000):
//! a virtual clock, a deterministic event calendar, FCFS multi-server
//! service centers, random variates, and statistics accumulators. The
//! simulated database of the `simdb` crate is built entirely on these
//! primitives.
//!
//! ## Design
//!
//! * **Event-routine style.** A simulation is a [`Model`] that reacts to
//!   events and schedules new ones via the [`Scheduler`]. No coroutines,
//!   no `RefCell` webs — just a heap-owned model stepped by the executor.
//! * **Integer time.** [`SimTime`] is nanoseconds in a `u64`; equal
//!   timestamps break ties FIFO, so runs are bit-for-bit reproducible.
//! * **Reusable stations.** [`ServiceCenter`] answers "when does this job
//!   complete?" and leaves event scheduling to the model, so one station
//!   type serves CPUs, disks, or anything else.
//!
//! ## Example
//!
//! ```
//! use desim::{Model, Scheduler, SimTime, Simulation};
//!
//! /// M/D/1-ish: jobs arrive every 10ms, each needs 4ms of service.
//! struct OneServer {
//!     busy_until: SimTime,
//!     served: u32,
//! }
//!
//! enum Ev { Arrival, Departure }
//!
//! impl Model for OneServer {
//!     type Event = Ev;
//!     fn handle(&mut self, ev: Ev, s: &mut Scheduler<Ev>) {
//!         match ev {
//!             Ev::Arrival => {
//!                 let start = self.busy_until.max(s.now());
//!                 let done = start + SimTime::from_millis(4);
//!                 self.busy_until = done;
//!                 s.schedule_at(done, Ev::Departure);
//!                 if self.served < 9 {
//!                     s.schedule_in(SimTime::from_millis(10), Ev::Arrival);
//!                 }
//!             }
//!             Ev::Departure => self.served += 1,
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(OneServer { busy_until: SimTime::ZERO, served: 0 });
//! sim.prime(SimTime::ZERO, Ev::Arrival);
//! sim.run();
//! assert_eq!(sim.model().served, 10);
//! ```

#![warn(missing_docs)]

mod calendar;
mod queue;
mod rng;
mod sim;
mod stats;
mod time;

pub use calendar::{Calendar, EventId};
pub use queue::{Admission, ServiceCenter};
pub use rng::{bernoulli, exp_time, uniform_inclusive};
pub use sim::{Model, RunOutcome, Scheduler, Simulation};
pub use stats::{Tally, TimeWeighted};
pub use time::SimTime;

//! The simulation executor.
//!
//! A simulation couples a user *model* with an event calendar and a
//! virtual clock. The model consumes events one at a time and may
//! schedule further events through the [`Scheduler`] handle it is given.
//! This "event-routine" style (rather than CSIM's coroutine processes)
//! keeps the kernel allocation-free in steady state and trivially
//! deterministic.

use crate::calendar::{Calendar, EventId};
use crate::time::SimTime;

/// Scheduling interface handed to the model on every event.
///
/// Borrowing rules prevent the model from holding `&mut self` while also
/// mutating the calendar, so the executor splits them: the model gets
/// `&mut Scheduler` alongside its own `&mut self`.
pub struct Scheduler<E> {
    now: SimTime,
    calendar: Calendar<E>,
    stop_requested: bool,
    events_dispatched: u64,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            calendar: Calendar::new(),
            stop_requested: false,
            events_dispatched: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) -> EventId {
        let at = self.now + delay;
        self.calendar.schedule(at, event)
    }

    /// Schedule `event` at an absolute virtual time. Panics if `at` is in
    /// the virtual past: time travel would silently corrupt statistics.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={:?} at={:?}",
            self.now,
            at
        );
        self.calendar.schedule(at, event)
    }

    /// Cancel a pending event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.calendar.cancel(id)
    }

    /// Ask the executor to stop after the current event returns.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }

    /// Total number of events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }
}

/// A simulation model: reacts to events.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event at virtual time `sched.now()`.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Outcome of a simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The calendar drained: no events left.
    Exhausted,
    /// The model called [`Scheduler::stop`].
    Stopped,
    /// The configured horizon was reached; later events remain pending.
    HorizonReached,
}

/// The simulation executor: owns the model and the scheduler.
pub struct Simulation<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
}

impl<M: Model> Simulation<M> {
    /// Create a simulation around `model` with an empty calendar at t=0.
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            sched: Scheduler::new(),
        }
    }

    /// Seed an initial event before running.
    pub fn prime(&mut self, at: SimTime, event: M::Event) -> EventId {
        self.sched.calendar.schedule(at, event)
    }

    /// Access the model (e.g. to collect statistics after a run).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model between runs.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the simulation, returning the model (for post-run
    /// statistics extraction).
    pub fn into_model(self) -> M {
        self.model
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total events dispatched.
    pub fn events_dispatched(&self) -> u64 {
        self.sched.events_dispatched
    }

    /// Run until the calendar drains or the model stops the run.
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Run until `horizon` (inclusive), the calendar drains, or the model
    /// requests a stop — whichever comes first.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            if self.sched.stop_requested {
                self.sched.stop_requested = false;
                return RunOutcome::Stopped;
            }
            match self.sched.calendar.peek_time() {
                None => return RunOutcome::Exhausted,
                Some(t) if t > horizon => {
                    // Advance the clock to the horizon so statistics
                    // windows close consistently.
                    self.sched.now = horizon;
                    return RunOutcome::HorizonReached;
                }
                Some(_) => {}
            }
            let (t, ev) = self
                .sched
                .calendar
                .pop()
                .expect("peek saw an event, pop must succeed");
            debug_assert!(t >= self.sched.now, "calendar went backwards");
            self.sched.now = t;
            self.sched.events_dispatched += 1;
            self.model.handle(ev, &mut self.sched);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that counts ticks and re-arms itself a fixed number of times.
    struct Ticker {
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    impl Model for Ticker {
        type Event = ();
        fn handle(&mut self, _: (), sched: &mut Scheduler<()>) {
            self.fired_at.push(sched.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.schedule_in(SimTime::from_millis(10), ());
            }
        }
    }

    #[test]
    fn ticker_runs_to_exhaustion() {
        let mut sim = Simulation::new(Ticker {
            remaining: 3,
            fired_at: vec![],
        });
        sim.prime(SimTime::ZERO, ());
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        assert_eq!(
            sim.model().fired_at,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(10),
                SimTime::from_millis(20),
                SimTime::from_millis(30),
            ]
        );
        assert_eq!(sim.events_dispatched(), 4);
    }

    #[test]
    fn horizon_cuts_off_and_clock_lands_on_horizon() {
        let mut sim = Simulation::new(Ticker {
            remaining: 1000,
            fired_at: vec![],
        });
        sim.prime(SimTime::ZERO, ());
        let outcome = sim.run_until(SimTime::from_millis(25));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.model().fired_at.len(), 3); // t=0,10,20
        assert_eq!(sim.now(), SimTime::from_millis(25));
    }

    struct Stopper;
    impl Model for Stopper {
        type Event = u32;
        fn handle(&mut self, ev: u32, sched: &mut Scheduler<u32>) {
            if ev == 2 {
                sched.stop();
            }
        }
    }

    #[test]
    fn model_can_stop_run() {
        let mut sim = Simulation::new(Stopper);
        sim.prime(SimTime::from_millis(1), 1);
        sim.prime(SimTime::from_millis(2), 2);
        sim.prime(SimTime::from_millis(3), 3);
        assert_eq!(sim.run(), RunOutcome::Stopped);
        assert_eq!(sim.now(), SimTime::from_millis(2));
        // Remaining event still pending; a subsequent run drains it.
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        assert_eq!(sim.now(), SimTime::from_millis(3));
    }

    /// A model that arms a timeout and cancels it when work finishes
    /// first — the classic watchdog pattern.
    struct Watchdog {
        timeout: Option<crate::calendar::EventId>,
        timed_out: bool,
        finished: bool,
    }

    #[derive(Clone, Copy)]
    enum WEv {
        Start,
        Work,
        Timeout,
    }

    impl Model for Watchdog {
        type Event = WEv;
        fn handle(&mut self, ev: WEv, sched: &mut Scheduler<WEv>) {
            match ev {
                WEv::Start => {
                    self.timeout = Some(sched.schedule_in(SimTime::from_millis(100), WEv::Timeout));
                    sched.schedule_in(SimTime::from_millis(10), WEv::Work);
                }
                WEv::Work => {
                    self.finished = true;
                    if let Some(id) = self.timeout.take() {
                        assert!(sched.cancel(id));
                    }
                }
                WEv::Timeout => self.timed_out = true,
            }
        }
    }

    #[test]
    fn cancelled_timeout_never_fires() {
        let mut sim = Simulation::new(Watchdog {
            timeout: None,
            timed_out: false,
            finished: false,
        });
        sim.prime(SimTime::ZERO, WEv::Start);
        assert_eq!(sim.run(), RunOutcome::Exhausted);
        let m = sim.into_model();
        assert!(m.finished);
        assert!(!m.timed_out, "cancelled watchdog must not fire");
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, _: (), sched: &mut Scheduler<()>) {
                sched.schedule_at(SimTime::ZERO, ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.prime(SimTime::from_millis(5), ());
        sim.run();
    }
}

//! Virtual simulation time.
//!
//! Time is kept as an integer number of nanoseconds so that the event
//! calendar is exact: two events scheduled at the same instant compare
//! equal, and accumulating many small delays never drifts the clock the
//! way `f64` arithmetic would.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// A point (or span) of virtual time, in nanoseconds.
///
/// `SimTime` is used both for absolute timestamps and for durations; the
/// arithmetic operators are saturating-free (they panic on overflow in
/// debug builds, like the integer they wrap).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds of virtual time.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds of virtual time.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole microseconds of virtual time.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from nanoseconds of virtual time.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from fractional seconds. Sub-nanosecond precision is
    /// truncated. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9) as u64)
    }

    /// Construct from fractional milliseconds (truncated to nanoseconds).
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// This time expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs > self`.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Multiply a duration by an integer scale factor.
    pub fn scaled(self, k: u64) -> SimTime {
        SimTime(self.0 * k)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_nanos(11).as_nanos(), 11);
    }

    #[test]
    fn float_conversions() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_millis_f64() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a + b, SimTime::from_millis(14));
        assert_eq!(a - b, SimTime::from_millis(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(b.scaled(3), SimTime::from_millis(12));
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(14));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}

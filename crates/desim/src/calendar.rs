//! The event calendar: a priority queue of timestamped events.
//!
//! Events are generic over a user event type `E`. Ties in timestamp are
//! broken by insertion order (FIFO), which makes simulations deterministic
//! for a given schedule of calls — an essential property for reproducible
//! experiments.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so earliest time pops first,
        // and among equal times the lowest sequence number (FIFO).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event calendar.
///
/// `pop` returns events in nondecreasing time order; events scheduled for
/// the same instant come back in the order they were scheduled.
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    next_id: u64,
    cancelled: std::collections::HashSet<EventId>,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Create an empty calendar.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            next_id: 0,
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            id,
            event,
        });
        id
    }

    /// Cancel a previously scheduled event. Cancellation is lazy: the
    /// entry stays in the heap but is skipped when popped. Returns `true`
    /// if the id had not already been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.cancelled.insert(id)
    }

    /// Remove and return the earliest pending event, skipping cancelled
    /// entries. `None` when the calendar is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Time of the earliest non-cancelled pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Lazily drop cancelled entries from the top of the heap.
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.id) {
                let e = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&e.id);
                continue;
            }
            return Some(top.time);
        }
        None
    }

    /// Number of pending entries, **including** lazily cancelled ones.
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut c = Calendar::new();
        c.schedule(SimTime::from_millis(30), "c");
        c.schedule(SimTime::from_millis(10), "a");
        c.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| c.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut c = Calendar::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            c.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| c.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut c = Calendar::new();
        let a = c.schedule(SimTime::from_millis(1), "a");
        c.schedule(SimTime::from_millis(2), "b");
        assert!(c.cancel(a));
        assert!(!c.cancel(a), "double cancel reports false");
        assert_eq!(c.pop().map(|(_, e)| e), Some("b"));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut c = Calendar::new();
        let a = c.schedule(SimTime::from_millis(1), "a");
        c.schedule(SimTime::from_millis(7), "b");
        c.cancel(a);
        assert_eq!(c.peek_time(), Some(SimTime::from_millis(7)));
        assert!(!c.is_empty());
        c.pop();
        assert!(c.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut c = Calendar::new();
        c.schedule(SimTime::from_millis(10), 1);
        assert_eq!(
            c.pop().map(|(t, e)| (t.as_millis_f64() as u64, e)),
            Some((10, 1))
        );
        c.schedule(SimTime::from_millis(5), 2);
        c.schedule(SimTime::from_millis(6), 3);
        assert_eq!(c.pop().map(|(_, e)| e), Some(2));
        c.schedule(SimTime::from_millis(1), 4); // earlier than remaining
        assert_eq!(c.pop().map(|(_, e)| e), Some(4));
        assert_eq!(c.pop().map(|(_, e)| e), Some(3));
    }
}

//! Random variate generation for simulations.
//!
//! Only the distributions the database model needs: uniform, Bernoulli,
//! exponential (inter-arrival times), and discrete uniform ranges. All
//! sampling goes through a caller-supplied `Rng`, so simulations stay
//! reproducible under a fixed seed.

use rand::Rng;

use crate::time::SimTime;

/// Sample an exponentially distributed duration with the given mean,
/// by inverse-transform sampling. Mean of zero yields zero.
pub fn exp_time<R: Rng + ?Sized>(rng: &mut R, mean: SimTime) -> SimTime {
    if mean == SimTime::ZERO {
        return SimTime::ZERO;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let x = -u.ln(); // Exp(1)
    SimTime::from_secs_f64(x * mean.as_secs_f64())
}

/// Sample `true` with probability `p` (clamped to \[0,1\]).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    let p = p.clamp(0.0, 1.0);
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.gen::<f64>() < p
    }
}

/// Sample an integer uniformly from `lo..=hi` (inclusive). Panics if
/// `lo > hi`.
pub fn uniform_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    assert!(lo <= hi, "uniform_inclusive: lo {lo} > hi {hi}");
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_time_mean_converges() {
        let mut rng = StdRng::seed_from_u64(7);
        let mean = SimTime::from_millis(100);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exp_time(&mut rng, mean).as_secs_f64()).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - 0.1).abs() < 0.005,
            "sample mean {sample_mean} too far from 0.1"
        );
    }

    #[test]
    fn exp_time_zero_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(exp_time(&mut rng, SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!bernoulli(&mut rng, 0.0));
        assert!(bernoulli(&mut rng, 1.0));
        assert!(!bernoulli(&mut rng, -3.0));
        assert!(bernoulli(&mut rng, 4.0));
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..50_000).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let freq = hits as f64 / 50_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn uniform_inclusive_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            let x = uniform_inclusive(&mut rng, 1, 5);
            assert!((1..=5).contains(&x));
            saw_lo |= x == 1;
            saw_hi |= x == 5;
        }
        assert!(saw_lo && saw_hi);
        assert_eq!(uniform_inclusive(&mut rng, 9, 9), 9);
    }

    #[test]
    fn determinism_under_seed() {
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10)
                .map(|_| exp_time(&mut rng, SimTime::from_millis(5)).as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(42), sample(42));
        assert_ne!(sample(42), sample(43));
    }
}

//! Capture → replay → divergence detection, across all 8 strategies.
//!
//! Run with: `cargo run --example replay_audit`
//!
//! Demonstrates the execution-journal flight recorder end to end:
//!
//! 1. execute one promo-style decision flow under every strategy
//!    combination, capturing a [`Journal`] of every control decision;
//! 2. serialize each journal to JSON and load it back (schema-version
//!    checked) — byte-identical round-trip;
//! 3. replay each journal and verify the reproduced
//!    `ExecutionRecord` equals the original, field for field;
//! 4. tamper with one journal (flip a recorded task value) and show
//!    the replay engine pinpointing the divergence at its exact
//!    logical clock;
//! 5. time-travel: step a journal to an intermediate frame and inspect
//!    the runtime state mid-flight;
//! 6. export a journal in the §2 nested-relation audit format.

use std::sync::Arc;

use decision_flows::decisionflow::journal::Event;
use decision_flows::decisionflow::report::{journal_audit, ExecutionRecord};
use decision_flows::prelude::*;

/// The give_promo cascade of §4, with a speculative gate in the middle
/// so conservative and speculative strategies genuinely differ.
fn build_schema() -> Arc<Schema> {
    let mut b = SchemaBuilder::new();
    let income = b.source("expendable_income");
    let give = b.attr(
        "give_promo",
        Task::const_query(2, true),
        vec![],
        Expr::cmp_const(income, CmpOp::Gt, 100i64),
    );
    let hits = b.attr(
        "promo_hit_list",
        Task::const_query(5, vec!["coat", "hat"]),
        vec![],
        Expr::Lit(true),
    );
    let images = b.attr(
        "promo_images",
        Task::query(3, |ins: &[Value]| match &ins[0] {
            Value::List(items) if !items.is_empty() => items[0].clone(),
            _ => Value::Null,
        }),
        vec![hits],
        Expr::Truthy(give),
    );
    let page = b.attr(
        "presentation",
        Task::query(1, |ins: &[Value]| Value::str(format!("page<{}>", ins[0]))),
        vec![images],
        Expr::Truthy(give),
    );
    b.mark_target(page);
    Arc::new(b.build().expect("valid schema"))
}

fn main() {
    let schema = build_schema();
    let mut sources = SourceValues::new();
    sources.set(schema.lookup("expendable_income").unwrap(), 500i64);
    let snap = complete_snapshot(&schema, &sources).expect("oracle");

    // 1–3: capture, serialize, reload, replay — all 8 combinations.
    println!("capture → JSON → replay, all 8 strategies at 100% parallelism:");
    let mut sample = None;
    for strategy in Strategy::all_at(100) {
        let report = Request::with_schema(Arc::clone(&schema))
            .sources(sources.clone())
            .strategy(strategy)
            .record_journal(true)
            .run()
            .expect("execution");
        let (out, journal) = (report.outcome, report.journal.expect("journal requested"));
        let original = ExecutionRecord::from_runtime(&out.runtime, out.time_units);

        let json = journal.to_json();
        let reloaded = Journal::from_json(&json).expect("version-checked load");
        assert_eq!(reloaded, journal, "serialization round-trip");

        let replayed = ReplayEngine::new(Arc::clone(&schema), reloaded)
            .expect("journal header accepted")
            .replay()
            .expect("faithful replay");
        assert_eq!(replayed.record, original, "byte-for-byte reproduction");
        assert!(replayed.runtime.agrees_with(&snap), "oracle agreement");

        println!(
            "  {strategy:<7} work={:<3} time={:<3} frames={:<3} json={}B  replay=identical",
            out.work(),
            out.time_units,
            journal.frames.len(),
            json.len(),
        );
        if strategy.speculative && sample.is_none() {
            sample = Some(journal);
        }
    }
    let journal = sample.expect("a speculative journal");

    // 4: tamper with a recorded completion value.
    let mut tampered = journal.clone();
    let idx = tampered
        .frames
        .iter()
        .position(|f| matches!(f.event, Event::Complete { .. }))
        .expect("a completion");
    if let Event::Complete { value, .. } = &mut tampered.frames[idx].event {
        *value = Value::str("forged");
    }
    let divergence = ReplayEngine::new(Arc::clone(&schema), tampered)
        .unwrap()
        .replay()
        .expect_err("tampering must be caught");
    println!("\ntampered journal detected:\n  {divergence}");

    // 5: time travel to the middle of the execution.
    let engine = ReplayEngine::new(Arc::clone(&schema), journal.clone()).unwrap();
    let mid = journal.frames.len() as u64 / 2;
    let rt = engine.step_to(mid).expect("partial replay");
    println!(
        "\nstate at logical clock {mid} (of {}):",
        journal.frames.len()
    );
    for a in schema.attr_ids() {
        println!(
            "  {:<16} {:?}{}",
            schema.attr(a).name,
            rt.state(a),
            rt.stable_value(a)
                .map(|v| format!(" = {v}"))
                .unwrap_or_default()
        );
    }

    // 6: the nested-relation audit export.
    println!(
        "\nnested-relation audit export:\n{}",
        journal_audit(&journal)
    );
}

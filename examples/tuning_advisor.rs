//! Tuning advisor: the paper's "Prescriptions for Tuning" (§5) as a
//! tool.
//!
//! Run with: `cargo run --release --example tuning_advisor`
//!
//! Given a decision-flow pattern and a target throughput, the advisor
//!
//! 1. calibrates the database's `Db` function (unit response time vs
//!    load) on the simulated server;
//! 2. computes the Equation-(6) bound on affordable Work per instance;
//! 3. builds the pattern's guideline map (minT vs Work frontier);
//! 4. combines the two — predicted response = minT(W) × UnitTime(W) —
//!    and recommends the execution program minimizing it;
//! 5. verifies the recommendation by actually running the open load.

use dflowgen::{generate, PatternParams};
use dflowperf::{
    guideline_for_pattern, max_work_for_throughput, portfolio, solve_unit_time_with_lmpl, Arrival,
    DbFunction, SimDb, Workload,
};
use simdb::{measure_db_function_open, DbConfig};

fn main() {
    let pattern = PatternParams {
        nb_nodes: 64,
        nb_rows: 4,
        pct_enabled: 50,
        ..Default::default()
    };
    let th = 3.0; // target throughput, instances/second
    let db_cfg = DbConfig::default();

    println!(
        "pattern: {} nodes x {} rows, %enabled={}",
        pattern.nb_nodes, pattern.nb_rows, pattern.pct_enabled
    );
    println!("target throughput: {th} instances/second\n");

    eprintln!("[1/4] calibrating Db function on the simulated database ...");
    let rates: Vec<f64> = (1..=13).map(|i| i as f64 * 30.0).collect();
    let db = DbFunction::from_points(&measure_db_function_open(db_cfg, rates, 0xAD));

    let bound = max_work_for_throughput(&db, th, 100_000);
    println!("[2/4] Equation (6): at Th={th}/s the database affords <= {bound} units/instance");

    eprintln!("[3/4] building guideline map (this sweeps strategies over the pattern) ...");
    let map = guideline_for_pattern(pattern, &portfolio(&[40, 80, 100]), 12, 0xAD);

    println!("[4/4] frontier with predicted response times:");
    println!(
        "      {:<8} {:>7} {:>8} {:>14}",
        "program", "Work", "minT", "predicted(ms)"
    );
    let mut best: Option<(dflowperf::StrategyPoint, f64)> = None;
    for p in map.frontier() {
        if p.work > bound as f64 {
            println!(
                "      {:<8} {:>7.1} {:>8.1} {:>14}",
                p.strategy.to_string(),
                p.work,
                p.time_units,
                "over budget"
            );
            continue;
        }
        let lmpl = (p.work / p.time_units).max(1.0);
        match solve_unit_time_with_lmpl(&db, th, p.work, lmpl).stable_ms() {
            Some(u) => {
                let pred = u * p.time_units;
                println!(
                    "      {:<8} {:>7.1} {:>8.1} {:>14.0}",
                    p.strategy.to_string(),
                    p.work,
                    p.time_units,
                    pred
                );
                if best.as_ref().is_none_or(|(_, b)| pred < *b) {
                    best = Some((*p, pred));
                }
            }
            None => println!(
                "      {:<8} {:>7.1} {:>8.1} {:>14}",
                p.strategy.to_string(),
                p.work,
                p.time_units,
                "saturates"
            ),
        }
    }

    let (choice, predicted) = best.expect("at least one feasible program");
    println!(
        "\nrecommendation: run {} (predicted response {:.0} ms at Th={th}/s)",
        choice.strategy, predicted
    );

    eprintln!("\nverifying against the simulated database ...");
    let flows: Vec<_> = (0..6)
        .map(|i| generate(pattern, 0xAD + i).unwrap())
        .collect();
    let measured = Workload::new(flows)
        .arrivals(Arrival::Poisson { rate: th })
        .instances(300)
        .warmup(60)
        .seed(0xAD)
        .strategy(choice.strategy)
        .run(&SimDb::new(db_cfg))
        .expect("valid workload");
    let m = measured.responses.mean();
    println!(
        "measured: {:.0} ms mean response ({} instances, mean Gmpl {:.1}) — {:.0}% off the prediction",
        m,
        measured.completed,
        measured.sim.expect("simdb stats").mean_gmpl,
        100.0 * (predicted - m).abs() / m
    );
}

//! Live server dashboard: poll the engine server's telemetry once a
//! second while an open Poisson workload runs against it.
//!
//! Run with: `cargo run --release --example server_dashboard`
//!
//! This is the observability loop an operator would run: one thread
//! drives a Poisson arrival stream at the server through the
//! [`OnServer`] backend (the workload is a tenant of a *caller-owned*
//! server, not a private one), while the main thread holds the
//! server's [`Telemetry`] handle and prints a one-line dashboard each
//! second — in-flight instances, queue depth, completions seen on the
//! event stream, and the p99 of the `queue_wait` and `e2e` stage
//! histograms. At the end it prints the full per-stage breakdown and a
//! sample of the Prometheus exposition a scrape endpoint would serve.
//!
//! [`OnServer`]: dflowperf::OnServer
//! [`Telemetry`]: decision_flows::prelude::Telemetry

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use decision_flows::prelude::*;
use dflowgen::{generate, GeneratedFlow, PatternParams};
use dflowperf::{Arrival, LoadReport, OnServer, Workload};

fn main() {
    // A small server: 2 shards × 2 workers, speculating eagerly, with
    // cross-request memoization on (the workload resubmits the same
    // three flows over and over, so most task computations are repeats).
    let strategy: Strategy = "PSE100".parse().unwrap();
    let server = EngineServer::builder()
        .shards(2)
        .workers_per_shard(2)
        .strategy(strategy)
        .memoize(4096)
        .build()
        .expect("server build");
    let telemetry = server.telemetry();
    let events = server.subscribe_with_capacity(8192);

    // Table-1-style generated flows as the offered load.
    let params = PatternParams {
        nb_nodes: 24,
        nb_rows: 4,
        pct_enabled: 75,
        ..Default::default()
    };
    let flows: Vec<GeneratedFlow> = (0..3)
        .map(|i| generate(params, 0xDA5B + i).expect("valid pattern"))
        .collect();

    let done = AtomicBool::new(false);
    let report: Option<LoadReport> = std::thread::scope(|scope| {
        let driver = scope.spawn(|| {
            let r = Workload::new(flows)
                .arrivals(Arrival::Poisson { rate: 400.0 })
                .instances(1200)
                .warmup(100)
                .seed(42)
                .strategy(strategy)
                .run(&OnServer::new(&server))
                .expect("workload run");
            done.store(true, Ordering::Release);
            r
        });

        println!("  t  in-flight  queued  completed  p99 queue-wait  p99 e2e");
        let mut completions = 0u64;
        let mut tick = 0u32;
        while !done.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_secs(1));
            tick += 1;
            // Count completions seen on the event stream since the
            // last tick (the dashboard's own independent signal).
            while let Ok(Some(ev)) = events.try_recv() {
                if matches!(ev, InstanceEvent::Completed { .. }) {
                    completions += 1;
                }
            }
            let snap = telemetry.snapshot();
            println!(
                "{tick:3}s  {:9}  {:6}  {completions:9}  {:11.2}ms  {:5.2}ms",
                snap.gauge("instances_in_flight").unwrap_or(0),
                snap.gauge("jobs_queued").unwrap_or(0),
                snap.stage("queue_wait").map(|h| h.p99_ms()).unwrap_or(0.0),
                snap.stage("e2e").map(|h| h.p99_ms()).unwrap_or(0.0),
            );
        }
        driver.join().ok()
    });

    let report = report.expect("driver thread");
    let snap = telemetry.snapshot();
    println!(
        "\nrun: {} submitted, {} completed, {:.0}/s measured throughput",
        report.submitted, report.completed, report.throughput_per_sec
    );
    println!("\nper-stage latency (all completions):");
    println!(
        "  {:<12} {:>7} {:>9} {:>9} {:>9}",
        "stage", "count", "p50_ms", "p90_ms", "p99_ms"
    );
    for stage in &snap.stages {
        let h = &stage.histogram;
        println!(
            "  {:<12} {:>7} {:>9.3} {:>9.3} {:>9.3}",
            stage.stage,
            h.count(),
            h.p50_ms(),
            h.p90_ms(),
            h.p99_ms()
        );
    }
    let hits = snap.counter("memo_hits").unwrap_or(0);
    let misses = snap.counter("memo_misses").unwrap_or(0);
    if hits + misses > 0 {
        println!(
            "\nmemo: {:.1}% hit rate ({hits} hits / {misses} misses, {} evictions)",
            100.0 * hits as f64 / (hits + misses) as f64,
            snap.counter("memo_evictions").unwrap_or(0),
        );
    }
    println!(
        "\nrecent spans retained: {} (dropped {})",
        telemetry.recent_spans().len(),
        telemetry.spans_dropped()
    );
    println!("\nprometheus exposition (first lines):");
    for line in snap.render_prometheus().lines().take(8) {
        println!("  {line}");
    }
}

//! The paper's running example (Figure 1): selecting and generating
//! promo images for a web-based clothing storefront.
//!
//! Run with: `cargo run --example promo_storefront`
//!
//! Demonstrates:
//! * modular schema specification and flattening (`ModularBuilder`);
//! * database "dips" as foreign query tasks over synthetic tables;
//! * a business-rule synthesis task for the give_promo? decision;
//! * eager condition evaluation (the `db_load < 95` short-circuit);
//! * backward propagation: when the customer has no expendable income
//!   the whole promo pipeline is pruned without executing a query;
//! * the execution log as a mining relation (§2).

use std::sync::Arc;

use decision_flows::decisionflow::report::{ExecutionLog, ExecutionRecord};
use decision_flows::prelude::*;

struct Storefront {
    schema: Arc<Schema>,
}

fn build() -> Storefront {
    let mut b = ModularBuilder::new();

    // ---- Sources: the instance inputs of Figure 1 -----------------------
    let cart_boy_items = b.source("cart_boy_items"); // # boy's items in cart
    let cart_child_items = b.source("cart_child_items"); // # child's items
    let bought_boy_before = b.source("bought_boy_item_prev_2y"); // bool
    let home_zip = b.source("home_zip");
    let db_load = b.source("db_load"); // % load on inventory DB
    let session_promos = b.source("promos_given_this_session");
    let income = b.source("monthly_income");
    let expenses = b.source("monthly_expenses");

    // ---- Module: boy's coat promo ---------------------------------------
    // Enabling (Figure 1): at least one boy's item in the cart, OR at
    // least one child's item AND a boy's purchase in the last 2 years.
    let boys_gate = Expr::cmp_const(cart_boy_items, CmpOp::Gt, 0i64).or(Expr::cmp_const(
        cart_child_items,
        CmpOp::Gt,
        0i64,
    )
    .and(Expr::Truthy(bought_boy_before)));
    b.begin_module("boys_coat_promo", boys_gate);

    // Database dip: current climate at the customer's home.
    let climate = b.query("home_climate", 2, vec![home_zip], Expr::Lit(true), |v| {
        // Synthetic weather table keyed by zip prefix.
        match v[0].as_f64().map(|z| (z as i64) % 3) {
            Some(0) => Value::str("cold"),
            Some(1) => Value::str("mild"),
            _ => Value::str("warm"),
        }
    });

    // Hit list of appropriate coats with match scores.
    let hit_list = b.query(
        "coat_hit_list",
        5,
        vec![climate, cart_boy_items],
        Expr::Lit(true),
        |v| {
            let cold = matches!(&v[0], Value::Str(s) if s.as_ref() == "cold");
            let mut coats = vec![("parka", 88i64), ("raincoat", 61)];
            if cold {
                coats.push(("down_jacket", 93));
            }
            Value::List(
                coats
                    .into_iter()
                    .map(|(n, s)| Value::List(vec![Value::str(n), Value::Int(s)]))
                    .collect(),
            )
        },
    );

    // Synthesis: best match score (so the inventory gate can read it).
    let best_score = b.synthesis("best_score", vec![hit_list], Expr::Lit(true), |v| {
        let Value::List(coats) = &v[0] else {
            return Value::Null;
        };
        coats
            .iter()
            .filter_map(|c| match c {
                Value::List(pair) => pair.get(1).and_then(Value::as_f64),
                _ => None,
            })
            .fold(None::<f64>, |acc, s| Some(acc.map_or(s, |a| a.max(s))))
            .map(|s| Value::Int(s as i64))
            .unwrap_or(Value::Null)
    });

    // Inventory check, gated exactly as in Figure 1: "at least one coat
    // has score > 80 OR db load < 95%". Eager evaluation can decide
    // this from db_load alone, before the hit list is even computed.
    let inventory = b.query(
        "inventory_check",
        3,
        vec![hit_list],
        Expr::cmp_const(best_score, CmpOp::Gt, 80i64).or(Expr::cmp_const(
            db_load,
            CmpOp::Lt,
            95i64,
        )),
        |v| {
            let Value::List(coats) = &v[0] else {
                return Value::List(vec![]);
            };
            // Synthetic inventory: every second coat is in stock.
            Value::List(coats.iter().step_by(2).cloned().collect())
        },
    );

    // Price/profit listing, gated on availability.
    let available = b.synthesis(
        "coats_available",
        vec![inventory],
        Expr::Lit(true),
        |v| match &v[0] {
            Value::List(c) => Value::Int(c.len() as i64),
            _ => Value::Int(0),
        },
    );
    let priced = b.query(
        "priced_promos",
        2,
        vec![inventory],
        Expr::cmp_const(available, CmpOp::Gt, 0i64),
        |v| match &v[0] {
            Value::List(coats) if !coats.is_empty() => Value::List(
                coats
                    .iter()
                    .map(|c| Value::List(vec![c.clone(), Value::Float(59.99), Value::Float(18.0)]))
                    .collect(),
            ),
            _ => Value::Null,
        },
    );
    b.end_module();

    // ---- Decision module --------------------------------------------------
    let expendable = b.synthesis(
        "customer_expendable_income",
        vec![income, expenses],
        Expr::Lit(true),
        |v| {
            let inc = v[0].as_f64().unwrap_or(0.0);
            let exp = v[1].as_f64().unwrap_or(0.0);
            Value::Float((inc - exp).max(0.0))
        },
    );
    let promo_hits = b.synthesis(
        "promo_hit_list",
        vec![priced],
        Expr::Lit(true),
        |v| match &v[0] {
            Value::List(l) => Value::List(l.clone()),
            _ => Value::List(vec![]),
        },
    );

    // give_promo?: business rules, gated on expendable income > 0
    // (Figure 1: the presentation side is DISABLED when income is 0).
    let rules = RuleSet::new(
        vec![
            // Too many promos this session: back off.
            Rule::emit(
                Expr::cmp_const(AttrId::from_index(1), CmpOp::Gt, 3i64),
                false,
            )
            .weighted(3.0),
            // Something to promote and budget to spend: go.
            Rule::emit(Expr::Truthy(AttrId::from_index(0)), true).weighted(2.0),
        ],
        CombiningPolicy::HighestWeight,
        false,
    );
    let give_promo = b.attr(
        "give_promo",
        rules.into_task(),
        vec![promo_hits, session_promos],
        Expr::cmp_const(expendable, CmpOp::Gt, 0i64),
    );

    // ---- Presentation module ----------------------------------------------
    b.begin_module("presentation", Expr::Truthy(give_promo));
    let images = b.query(
        "image_retrievals",
        3,
        vec![promo_hits],
        Expr::Lit(true),
        |v| match &v[0] {
            Value::List(l) => Value::str(format!("{} product images", l.len())),
            _ => Value::Null,
        },
    );
    let text = b.query(
        "text_selection",
        2,
        vec![promo_hits],
        Expr::Lit(true),
        |_| Value::str("Warm coats for the season!"),
    );
    b.end_module();

    // Target: assembled promo block for the next web page (enabled only
    // when give_promo? = true, like the gray node of Figure 1).
    let mut bb = b;
    let assembly = bb.attr(
        "image_and_text_assembly",
        Task::synthesis(|v: &[Value]| Value::str(format!("page-block[{} | {}]", v[0], v[1]))),
        vec![images, text],
        Expr::Truthy(give_promo),
    );
    bb.mark_target(assembly);

    Storefront {
        schema: Arc::new(bb.build().expect("figure-1 flow is well-formed")),
    }
}

struct Customer {
    label: &'static str,
    boy_items: i64,
    child_items: i64,
    bought_before: bool,
    zip: i64,
    db_load: i64,
    session_promos: i64,
    income: f64,
    expenses: f64,
}

fn sources_for(s: &Storefront, c: &Customer) -> SourceValues {
    let mut sv = SourceValues::new();
    let set = |sv: &mut SourceValues, name: &str, v: Value| {
        sv.set(s.schema.lookup(name).unwrap(), v);
    };
    set(&mut sv, "cart_boy_items", Value::Int(c.boy_items));
    set(&mut sv, "cart_child_items", Value::Int(c.child_items));
    set(
        &mut sv,
        "bought_boy_item_prev_2y",
        Value::Bool(c.bought_before),
    );
    set(&mut sv, "home_zip", Value::Int(c.zip));
    set(&mut sv, "db_load", Value::Int(c.db_load));
    set(
        &mut sv,
        "promos_given_this_session",
        Value::Int(c.session_promos),
    );
    set(&mut sv, "monthly_income", Value::Float(c.income));
    set(&mut sv, "monthly_expenses", Value::Float(c.expenses));
    sv
}

fn main() {
    let store = build();
    println!(
        "flattened schema: {} attributes, {} dependency edges\n",
        store.schema.len(),
        store.schema.edge_count()
    );

    let customers = [
        Customer {
            label: "family shopper, cold climate, money to spend",
            boy_items: 1,
            child_items: 2,
            bought_before: true,
            zip: 30,
            db_load: 60,
            session_promos: 1,
            income: 5200.0,
            expenses: 3100.0,
        },
        Customer {
            label: "no boy/child items in cart (promo module disabled)",
            boy_items: 0,
            child_items: 0,
            bought_before: false,
            zip: 11,
            db_load: 60,
            session_promos: 0,
            income: 4000.0,
            expenses: 1000.0,
        },
        Customer {
            label: "no expendable income (backward propagation prunes)",
            boy_items: 2,
            child_items: 1,
            bought_before: true,
            zip: 30,
            db_load: 60,
            session_promos: 0,
            income: 1800.0,
            expenses: 2400.0,
        },
        Customer {
            label: "promo-fatigued (rules say no)",
            boy_items: 1,
            child_items: 0,
            bought_before: false,
            zip: 31,
            db_load: 60,
            session_promos: 5,
            income: 9000.0,
            expenses: 2000.0,
        },
    ];

    let strategy: Strategy = "PSE100".parse().unwrap();
    let mut log = ExecutionLog::new();
    for c in &customers {
        let sv = sources_for(&store, c);
        let snap = complete_snapshot(&store.schema, &sv).unwrap();
        let out = run_unit_time(&store.schema, strategy, &sv).unwrap();
        assert!(out.runtime.agrees_with(&snap));
        let target = store.schema.lookup("image_and_text_assembly").unwrap();
        println!("customer: {}", c.label);
        println!(
            "  -> {}",
            out.runtime
                .stable_value(target)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "(no promo)".into())
        );
        println!(
            "  work={} units, time={} units, unneeded pruned={}, eager decisions={}",
            out.metrics.work,
            out.time_units,
            out.metrics.unneeded_detected,
            out.metrics.eager_decisions
        );
        log.push(ExecutionRecord::from_runtime(&out.runtime, out.time_units));
    }

    println!("\n--- execution log as a mining relation (§2) ---");
    println!(
        "give_promo disabled rate: {:.0}%  | inventory_check disabled rate: {:.0}%",
        log.disabled_rate("give_promo") * 100.0,
        log.disabled_rate("inventory_check") * 100.0
    );
    println!(
        "mean work {:.1} units, mean time {:.1} units",
        log.mean_work(),
        log.mean_time()
    );
    println!("\ncsv sample:\n{}", log.to_csv());
}

//! Insurance-claims triage: a customer-care decision flow (the paper
//! names insurance claims processing as a core application of decision
//! flows alongside e-commerce and call centers).
//!
//! Run with: `cargo run --example insurance_claims`
//!
//! The flow triages an incoming auto claim:
//!
//! * cheap screening queries (policy status, claim history) gate the
//!   expensive ones (fraud scoring, adjuster search);
//! * the fraud model is a *speculative* win: its inputs are ready
//!   immediately but its gate (claim amount above the franchise) needs
//!   a policy-lookup round-trip first — the `S` option overlaps them;
//! * the triage decision itself is a weighted business-rule set.
//!
//! The example measures response time under all four P-option
//! strategies at full parallelism to show the speculation trade-off.

use std::sync::Arc;

use decision_flows::prelude::*;

fn build() -> Arc<Schema> {
    let mut b = SchemaBuilder::new();
    let policy_id = b.source("policy_id");
    let claim_amount = b.source("claim_amount");
    let incident_zip = b.source("incident_zip");

    // Policy lookup: slowish master-data dip.
    let policy = b.query("policy_lookup", 6, vec![policy_id], Expr::Lit(true), |v| {
        let id = v[0].as_f64().unwrap_or(0.0) as i64;
        // Synthetic policy table: status, deductible, franchise limit.
        Value::List(vec![
            Value::Bool(id % 7 != 0), // active?
            Value::Float(500.0),      // deductible
            Value::Float(2_000.0),    // franchise limit
        ])
    });
    let active = b.synthesis(
        "policy_active",
        vec![policy],
        Expr::Lit(true),
        |v| match &v[0] {
            Value::List(p) => p[0].clone(),
            _ => Value::Bool(false),
        },
    );
    let franchise = b.synthesis(
        "franchise_limit",
        vec![policy],
        Expr::Lit(true),
        |v| match &v[0] {
            Value::List(p) => p[2].clone(),
            _ => Value::Null,
        },
    );

    // Claim history: cheap, gates everything downstream.
    let history = b.query(
        "claim_history",
        2,
        vec![policy_id],
        Expr::Truthy(active),
        |v| {
            let id = v[0].as_f64().unwrap_or(0.0) as i64;
            Value::Int(id % 4) // prior claims in the last 3 years
        },
    );

    // Fraud scoring: expensive; only worthwhile for claims above the
    // franchise. Its *data* inputs (amount, zip, history) stabilize
    // before the franchise limit returns, so it is a prime speculative
    // candidate.
    let fraud = b.query(
        "fraud_score",
        8,
        vec![claim_amount, incident_zip, history],
        Expr::cmp_attrs(claim_amount, CmpOp::Gt, franchise),
        |v| {
            let amount = v[0].as_f64().unwrap_or(0.0);
            let priors = v[2].as_f64().unwrap_or(0.0);
            Value::Float((amount / 10_000.0 * 40.0 + priors * 15.0).min(100.0))
        },
    );

    // Adjuster search: needed only for non-trivial claims.
    let adjuster = b.query(
        "adjuster_search",
        4,
        vec![incident_zip],
        Expr::cmp_const(claim_amount, CmpOp::Gt, 1_000.0),
        |v| {
            Value::str(format!(
                "adjuster-{}",
                v[0].as_f64().unwrap_or(0.0) as i64 % 9
            ))
        },
    );

    // Triage decision: weighted rules over (fraud, history, amount).
    // Rule conditions index the task's inputs: 0=fraud 1=history 2=amount.
    let inp = AttrId::from_index;
    let rules = RuleSet::new(
        vec![
            Rule::emit(Expr::cmp_const(inp(0), CmpOp::Ge, 70.0), "investigate").weighted(5.0),
            Rule::emit(Expr::cmp_const(inp(2), CmpOp::Le, 500.0), "auto_approve").weighted(4.0),
            Rule::emit(Expr::cmp_const(inp(1), CmpOp::Ge, 3i64), "manual_review").weighted(3.0),
            Rule::emit(Expr::Lit(true), "standard_handling").weighted(1.0),
        ],
        CombiningPolicy::HighestWeight,
        "standard_handling",
    );
    let triage = b.attr(
        "triage",
        rules.into_task(),
        vec![fraud, history, claim_amount],
        Expr::Truthy(active),
    );

    // Target: the routed claim decision.
    let routed = b.synthesis("routing", vec![triage, adjuster], Expr::Lit(true), |v| {
        if v[0].is_null() {
            Value::str("reject: policy inactive")
        } else {
            Value::str(format!("{} via {}", v[0], v[1]))
        }
    });
    b.mark_target(routed);
    Arc::new(b.build().expect("claims flow is well-formed"))
}

fn main() {
    let schema = build();
    let claims = [
        (
            "small claim, active policy",
            11i64,
            400.0,
            55,
            "auto approval path",
        ),
        (
            "large suspicious claim",
            13,
            9_500.0,
            55,
            "fraud model gates",
        ),
        ("inactive policy", 14, 3_000.0, 20, "screened out early"),
    ];

    for (label, pid, amount, zip, note) in claims {
        let mut sv = SourceValues::new();
        sv.set(schema.lookup("policy_id").unwrap(), pid);
        sv.set(schema.lookup("claim_amount").unwrap(), amount);
        sv.set(schema.lookup("incident_zip").unwrap(), zip as i64);
        let snap = complete_snapshot(&schema, &sv).unwrap();

        println!("claim: {label} ({note})");
        for strat in ["PCE100", "PSE100", "PCC100", "PSC100"] {
            let strategy: Strategy = strat.parse().unwrap();
            let out = run_unit_time(&schema, strategy, &sv).unwrap();
            assert!(out.runtime.agrees_with(&snap), "oracle agreement");
            let target = schema.lookup("routing").unwrap();
            println!(
                "  [{strat}] time={:>2}  work={:>2}  wasted={:>2}  -> {}",
                out.time_units,
                out.metrics.work,
                out.metrics.wasted_work,
                out.runtime
                    .stable_value(target)
                    .map(|v| v.to_string())
                    .unwrap_or_default()
            );
        }
        println!();
    }

    println!("speculation overlaps the fraud model with the policy lookup when");
    println!("the claim is large (time drops), but burns its cost when the gate");
    println!("turns out closed (wasted work on the small claim).");
}

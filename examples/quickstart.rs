//! Quickstart: build a small decision flow, execute it under two
//! strategies, and check both against the declarative semantics.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The flow decides which shipping offer to show a customer:
//!
//! ```text
//! cart_total (source) ──────────┐
//! loyalty_tier (source) ─────┐  │
//!                            ▼  ▼
//!   free_ship_eligible?  (synthesis)
//!        │ enabling              │ enabling (negated)
//!        ▼                       ▼
//!   express_quote (query)   standard_quote (query)
//!        └──────────┬────────────┘
//!                   ▼
//!            offer (target, synthesis)
//! ```

use std::sync::Arc;

use decision_flows::prelude::*;

fn build_schema() -> (Arc<Schema>, AttrId) {
    let mut b = SchemaBuilder::new();
    let cart_total = b.source("cart_total");
    let loyalty = b.source("loyalty_tier");

    // Synthesis: free shipping for carts over $100 or gold members.
    let eligible = b.synthesis(
        "free_ship_eligible",
        vec![cart_total, loyalty],
        Expr::Lit(true),
        |v| {
            let total = v[0].as_f64().unwrap_or(0.0);
            let gold = matches!(&v[1], Value::Str(s) if s.as_ref() == "gold");
            Value::Bool(total > 100.0 || gold)
        },
    );

    // Two mutually exclusive quotes; each is a (simulated) database
    // query with a cost in units of processing. Only one will run.
    let express = b.query(
        "express_quote",
        4,
        vec![cart_total],
        Expr::Truthy(eligible),
        |v| Value::Float(v[0].as_f64().unwrap_or(0.0) * 0.0), // free!
    );
    let standard = b.query(
        "standard_quote",
        2,
        vec![cart_total],
        Expr::Not(Box::new(Expr::Truthy(eligible))),
        |v| Value::Float(5.0 + v[0].as_f64().unwrap_or(0.0) * 0.01),
    );

    // Target: whichever quote stabilized with a value wins.
    let offer = b.synthesis("offer", vec![express, standard], Expr::Lit(true), |v| {
        if !v[0].is_null() {
            Value::str(format!(
                "express shipping at ${:.2}",
                v[0].as_f64().unwrap()
            ))
        } else if !v[1].is_null() {
            Value::str(format!(
                "standard shipping at ${:.2}",
                v[1].as_f64().unwrap()
            ))
        } else {
            Value::str("no offer")
        }
    });
    b.mark_target(offer);
    (Arc::new(b.build().expect("well-formed flow")), offer)
}

fn main() {
    let (schema, offer) = build_schema();

    for (cart, tier) in [(250.0, "silver"), (40.0, "silver"), (40.0, "gold")] {
        let mut sources = SourceValues::new();
        sources.set(schema.lookup("cart_total").unwrap(), cart);
        sources.set(schema.lookup("loyalty_tier").unwrap(), tier);

        // The declarative oracle: the unique complete snapshot.
        let snapshot = complete_snapshot(&schema, &sources).expect("sources bound");

        println!("cart=${cart:.0} tier={tier}:");
        for strat in ["PCE0", "PSE100"] {
            let strategy: Strategy = strat.parse().unwrap();
            let out = run_unit_time(&schema, strategy, &sources).expect("no stall");
            assert!(
                out.runtime.agrees_with(&snapshot),
                "every strategy implements the same declarative semantics"
            );
            println!(
                "  [{strat:>6}] {:<36} work={:>2} units  time={:>2} units  launched={} wasted={}",
                out.runtime
                    .stable_value(offer)
                    .map(|v| v.to_string())
                    .unwrap_or_default(),
                out.metrics.work,
                out.time_units,
                out.metrics.launched,
                out.metrics.wasted_completions,
            );
        }
    }

    println!();
    println!("note: only one of the two quote queries ever runs — the other is");
    println!("disabled by its enabling condition, and the engine never pays for it.");
}

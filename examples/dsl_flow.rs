//! Decision flows as text: the schema DSL.
//!
//! Run with: `cargo run --example dsl_flow`
//!
//! Schemas are specifications (the Vortex declarative-workflow
//! lineage): this example defines a loan pre-approval flow entirely in
//! the textual schema language, binds its one external query to a Rust
//! function, and executes it for a few applicants.

use decision_flows::prelude::*;

const LOAN_FLOW: &str = r#"
# Loan pre-approval decision flow.
source applicant_id
source requested_amount
source annual_income

# Quick affordability screen: no external calls needed.
synth affordable(requested_amount, annual_income) when true
    = requested_amount <= annual_income * 0.4

# The credit bureau dip costs real money and latency: only for
# affordable requests.
query credit_score(applicant_id) cost 6 when affordable
    = extern credit_bureau

# Risk banding from the score; runs even if the bureau returned null
# (isnull fallback), because a decision must be made regardless.
synth risk_band(credit_score) when affordable
    = if isnull(credit_score) then "unknown"
      else if credit_score >= 720 then "prime"
      else if credit_score >= 620 then "near_prime"
      else "subprime"

# The target: pre-approval decision with an offered rate.
synth decision(risk_band, requested_amount) when true
    = if risk_band == "prime" then "approve at 5.1%"
      else if risk_band == "near_prime" then "approve at 7.9%"
      else if risk_band == "unknown" then "manual review"
      else coalesce(null, "decline")

target decision
"#;

fn main() {
    let mut externs = ExternRegistry::new();
    externs.register("credit_bureau", |inputs: &[Value]| {
        // Synthetic bureau: derive a score from the applicant id;
        // every 11th applicant has no file (⊥).
        let id = inputs[0].as_f64().unwrap_or(0.0) as i64;
        if id % 11 == 0 {
            Value::Null
        } else {
            Value::Int(550 + (id * 37) % 300)
        }
    });

    let schema = parse_schema(LOAN_FLOW, &externs).expect("flow parses");
    println!(
        "parsed {} attributes, {} dependency edges from {} lines of schema text\n",
        schema.len(),
        schema.edge_count(),
        LOAN_FLOW.lines().count()
    );

    // Conservative strategy so the affordability screen really does
    // gate the bureau call (speculation would prefetch it).
    let strategy: Strategy = "PCE100".parse().unwrap();
    for (id, amount, income) in [
        (1003i64, 20_000.0, 90_000.0), // prime score
        (1000, 18_000.0, 70_000.0),    // near-prime score
        (811, 9_000.0, 40_000.0),      // subprime score
        (1012, 10_000.0, 80_000.0),    // no bureau file: manual review
        (1002, 50_000.0, 60_000.0),    // not affordable: bureau never called
    ] {
        let mut sv = SourceValues::new();
        sv.set(schema.lookup("applicant_id").unwrap(), id);
        sv.set(schema.lookup("requested_amount").unwrap(), amount);
        sv.set(schema.lookup("annual_income").unwrap(), income);

        let snap = complete_snapshot(&schema, &sv).unwrap();
        let out = run_unit_time(&schema, strategy, &sv).unwrap();
        assert!(out.runtime.agrees_with(&snap));

        let decision = out
            .runtime
            .stable_value(schema.lookup("decision").unwrap())
            .cloned()
            .unwrap_or(Value::Null);
        let bureau = schema.lookup("credit_score").unwrap();
        let bureau_note = match out.runtime.state(bureau) {
            AttrState::Disabled => "not called (screened out)",
            AttrState::Value if out.runtime.stable_value(bureau).is_some_and(Value::is_null) => {
                "called, no file"
            }
            AttrState::Value => "called",
            _ => "pending",
        };
        println!(
            "applicant {id:>4}: {decision:<18} (work={} units, bureau {bureau_note})",
            out.metrics.work
        );
    }
}

//! Call-center routing on the multi-threaded engine server (§3's
//! execution module, paper Figure 2).
//!
//! Run with: `cargo run --example call_center`
//!
//! A stream of inbound customer contacts is submitted concurrently to
//! an [`EngineServer`]; each contact's decision flow looks up the
//! customer tier, estimates churn risk, and routes the call. The
//! worker-pool size caps how many "database dips" run at once — the
//! external server's finite multiprogramming level. Afterwards the
//! execution log is mined for schema refinements (§2).

use std::sync::Arc;

use decision_flows::decisionflow::report::{ExecutionLog, Refinement};
use decision_flows::prelude::*;

fn routing_flow() -> Arc<Schema> {
    let mut b = SchemaBuilder::new();
    let customer_id = b.source("customer_id");
    let wait_seconds = b.source("queue_wait_s");

    // Profile dip (simulated latency on the worker thread).
    let tier = b.query("tier_lookup", 2, vec![customer_id], Expr::Lit(true), |v| {
        std::thread::sleep(std::time::Duration::from_micros(200));
        match v[0].as_f64().map(|x| x as i64 % 5) {
            Some(0) => Value::str("platinum"),
            Some(1) | Some(2) => Value::str("gold"),
            _ => Value::str("standard"),
        }
    });
    let is_priority = b.synthesis("is_priority", vec![tier], Expr::Lit(true), |v| {
        Value::Bool(matches!(&v[0], Value::Str(s) if s.as_ref() != "standard"))
    });

    // Churn model: expensive, only for priority customers kept waiting.
    let churn = b.query(
        "churn_risk",
        6,
        vec![customer_id, wait_seconds],
        Expr::Truthy(is_priority).and(Expr::cmp_const(wait_seconds, CmpOp::Gt, 60i64)),
        |v| {
            std::thread::sleep(std::time::Duration::from_micros(600));
            let id = v[0].as_f64().unwrap_or(0.0);
            let wait = v[1].as_f64().unwrap_or(0.0);
            Value::Float(((id % 37.0) + wait / 10.0).min(100.0))
        },
    );

    // Routing rules over (tier-priority, churn, wait).
    let inp = AttrId::from_index;
    let rules = RuleSet::new(
        vec![
            Rule::emit(Expr::cmp_const(inp(1), CmpOp::Ge, 40.0), "retention_desk").weighted(5.0),
            Rule::emit(Expr::Truthy(inp(0)), "senior_agent").weighted(3.0),
            Rule::emit(Expr::cmp_const(inp(2), CmpOp::Gt, 300i64), "callback_offer").weighted(2.0),
            Rule::emit(Expr::Lit(true), "general_pool").weighted(1.0),
        ],
        CombiningPolicy::HighestWeight,
        "general_pool",
    );
    let route = b.attr(
        "route",
        rules.into_task(),
        vec![is_priority, churn, wait_seconds],
        Expr::Lit(true),
    );
    b.mark_target(route);
    Arc::new(b.build().expect("routing flow well-formed"))
}

fn main() {
    let schema = routing_flow();
    // 4 worker threads = the external systems' multiprogramming level;
    // the server spreads them over up to 4 shards (hash-routed).
    let server = EngineServer::builder()
        .workers(4)
        .strategy("PSE100".parse().unwrap())
        .build()
        .expect("spawn worker threads");
    server.register("routing", Arc::clone(&schema));

    let contacts: Vec<(i64, i64)> = (0..60).map(|i| (1000 + i * 7, (i * 13) % 420)).collect();

    // Watch the lifecycle stream while the burst executes.
    let events = server.subscribe();

    let t0 = std::time::Instant::now();
    // One batched submission: routing and registry lookups are
    // amortized over the whole burst of contacts.
    let tickets = server
        .submit_many(contacts.iter().map(|&(id, wait)| {
            Request::named("routing")
                .bind(schema.lookup("customer_id").unwrap(), id)
                .bind(schema.lookup("queue_wait_s").unwrap(), wait)
        }))
        .expect("registered schema");

    let mut log = ExecutionLog::new();
    let mut route_counts: std::collections::BTreeMap<String, usize> = Default::default();
    for t in tickets {
        let r: InstanceResult = t.wait().expect("server alive");
        if let Some(v) = r.record.outcome("route").and_then(|o| o.value.clone()) {
            *route_counts.entry(v.to_string()).or_default() += 1;
        }
        log.push(r.record);
    }
    let elapsed = t0.elapsed();

    let stats = server.stats();
    let mut completions = 0usize;
    while let Ok(Some(ev)) = events.try_recv() {
        if matches!(ev, InstanceEvent::Completed { .. }) {
            completions += 1;
        }
    }
    println!(
        "routed {} contacts in {:.1} ms wall-clock on {} workers across {} shards ({} used); \
         event stream saw {completions} completions",
        contacts.len(),
        elapsed.as_secs_f64() * 1e3,
        server.worker_count(),
        server.shard_count(),
        stats.shards_used(),
    );
    println!("routing mix: {route_counts:?}");
    println!(
        "mean work {:.1} units/contact; churn model disabled for {:.0}% of contacts",
        log.mean_work(),
        log.disabled_rate("churn_risk") * 100.0
    );

    println!("\nmining the execution log for refinements (§2):");
    let findings = log.suggest_refinements(0.85);
    if findings.is_empty() {
        println!("  (none at the 85% threshold)");
    }
    for f in findings {
        match f {
            Refinement::MostlyDisabled { attr, rate } => println!(
                "  - {attr} is disabled in {:.0}% of contacts: consider demoting its branch",
                rate * 100.0
            ),
            Refinement::MostlyEnabled { attr, rate } => println!(
                "  - {attr} is enabled in {:.0}% of contacts: its guard may be dead",
                rate * 100.0
            ),
            Refinement::HighSpeculationWaste { waste_ratio } => println!(
                "  - {:.0}% of work is wasted speculation: prefer a conservative strategy",
                waste_ratio * 100.0
            ),
        }
    }
}

//! # decision-flows — facade crate
//!
//! Re-exports the full reproduction of *"Optimization Techniques for
//! Data-Intensive Decision Flows"* (Hull, Llirbat, Kumar, Zhou, Dong,
//! Su — ICDE 2000):
//!
//! * [`decisionflow`] — the decision-flow model and optimized engine;
//! * [`dflowgen`] — Table 1 schema-pattern generator;
//! * [`dflowperf`] — analytical model, guideline maps, load driver;
//! * [`simdb`] — the simulated database server;
//! * [`desim`] — the discrete-event simulation kernel.
//!
//! See `examples/quickstart.rs` for a guided tour and the `dflow-bench`
//! crate for the per-figure experiment harnesses.

pub use decisionflow;
pub use desim;
pub use dflowgen;
pub use dflowperf;
pub use simdb;

pub use decisionflow::prelude;
